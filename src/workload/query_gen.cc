#include "workload/query_gen.h"

#include <array>

#include "expr/predicate.h"

namespace sqopt {

QueryGenerator::QueryGenerator(const Schema* schema, uint64_t seed,
                               QueryGenOptions options)
    : schema_(schema), rng_(seed), options_(options) {}

Result<Predicate> QueryGenerator::TriggerPredicate(ClassId class_id) {
  const std::string& name = schema_->object_class(class_id).name;
  // Menu of predicates that appear as constraint antecedents (so the
  // optimizer has transformations to find) or as strong filters.
  std::vector<std::string> menu;
  if (name == "supplier") {
    menu = {"supplier.region = \"west\"", "supplier.rating >= 8",
            "supplier.rating <= 3"};
  } else if (name == "cargo") {
    menu = {"cargo.desc = \"frozen food\"", "cargo.quantity >= 500",
            "cargo.desc = \"fuel\"", "cargo.weight <= 40"};
  } else if (name == "vehicle") {
    menu = {"vehicle.desc = \"refrigerated truck\"", "vehicle.vclass >= 4",
            "vehicle.desc = \"van\"", "vehicle.vclass >= 3"};
  } else if (name == "driver") {
    menu = {"driver.clearance = \"top secret\"", "driver.rank = \"senior\"",
            "driver.licenseClass >= 4"};
  } else if (name == "department") {
    menu = {"department.securityClass >= 4",
            "department.budget >= 100000",
            "department.securityClass <= 2"};
  } else {
    return Status::InvalidArgument("QueryGenerator: unexpected class '" +
                                   name + "'");
  }
  return ParsePredicate(*schema_, menu[rng_.Index(menu.size())]);
}

Result<Predicate> QueryGenerator::NeutralPredicate(ClassId class_id) {
  const std::string& name = schema_->object_class(class_id).name;
  // Range filters on uniform attributes: do not interact with the
  // constraint set, exist so that some queries gain nothing from SQO.
  std::string text;
  if (name == "supplier") {
    text = "supplier.rating >= " + std::to_string(rng_.UniformInt(1, 5));
  } else if (name == "cargo") {
    text = "cargo.quantity <= " + std::to_string(rng_.UniformInt(300, 900));
  } else if (name == "vehicle") {
    text = "vehicle.capacity >= " + std::to_string(rng_.UniformInt(5, 25));
  } else if (name == "driver") {
    text =
        "driver.licenseClass >= " + std::to_string(rng_.UniformInt(1, 3));
  } else if (name == "department") {
    text = "department.budget >= " +
           std::to_string(rng_.UniformInt(20000, 80000));
  } else {
    return Status::InvalidArgument("QueryGenerator: unexpected class '" +
                                   name + "'");
  }
  return ParsePredicate(*schema_, text);
}

Result<Query> QueryGenerator::FromPath(const SchemaPath& path) {
  Query query;
  query.classes = path.classes;
  query.relationships = path.relationships;

  // Projection: 1..max_projection attributes spread over path classes.
  size_t num_proj = 1 + rng_.Index(options_.max_projection);
  for (size_t i = 0; i < num_proj; ++i) {
    ClassId cid = path.classes[rng_.Index(path.classes.size())];
    const std::vector<AttrId> layout = schema_->LayoutOf(cid);
    AttrId attr = layout[rng_.Index(layout.size())];
    AttrRef ref{cid, attr};
    bool dup = false;
    for (const AttrRef& existing : query.projection) {
      if (existing == ref) dup = true;
    }
    if (!dup) query.projection.push_back(ref);
  }

  // Selective predicates.
  for (ClassId cid : path.classes) {
    if (!rng_.Bernoulli(options_.predicate_probability)) continue;
    Result<Predicate> pred = rng_.Bernoulli(options_.trigger_probability)
                                 ? TriggerPredicate(cid)
                                 : NeutralPredicate(cid);
    SQOPT_RETURN_IF_ERROR(pred.status());
    bool dup = false;
    for (const Predicate& existing : query.selective_predicates) {
      if (existing == *pred) dup = true;
    }
    if (!dup) query.selective_predicates.push_back(std::move(*pred));
  }

  SQOPT_RETURN_IF_ERROR(ValidateQuery(*schema_, query));
  return query;
}

Result<std::vector<Query>> QueryGenerator::Sample(
    const std::vector<SchemaPath>& paths, size_t count) {
  if (paths.empty()) {
    return Status::InvalidArgument("no paths to sample from");
  }
  std::vector<size_t> order(paths.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.Shuffle(&order);

  std::vector<Query> out;
  out.reserve(count);
  size_t cursor = 0;
  while (out.size() < count) {
    if (cursor == order.size()) {
      rng_.Shuffle(&order);
      cursor = 0;
    }
    SQOPT_ASSIGN_OR_RETURN(Query q, FromPath(paths[order[cursor++]]));
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace sqopt

// Path-query generation (§4): one query per schema path, decorated with
// selective predicates drawn from a menu designed to trigger the
// experiment constraints (the paper's queries over its schema play the
// same role). Deterministic from the seed.
#ifndef SQOPT_WORKLOAD_QUERY_GEN_H_
#define SQOPT_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "query/query.h"
#include "workload/path_enum.h"

namespace sqopt {

struct QueryGenOptions {
  // Probability that a class contributes one selective predicate.
  double predicate_probability = 0.6;
  // Probability a contributed predicate is drawn from the
  // constraint-triggering menu (vs a neutral id-range predicate).
  double trigger_probability = 0.7;
  // Max projected attributes (always >= 1, from the first path class).
  size_t max_projection = 3;
};

class QueryGenerator {
 public:
  // Requires the experiment schema (BuildExperimentSchema).
  QueryGenerator(const Schema* schema, uint64_t seed,
                 QueryGenOptions options = {});

  // Builds a query over `path`: classes + relationships from the path,
  // projection from path classes, selective predicates sampled per
  // class.
  Result<Query> FromPath(const SchemaPath& path);

  // `count` queries sampled (with replacement across paths, without
  // replacement within a draw round) from `paths`.
  Result<std::vector<Query>> Sample(const std::vector<SchemaPath>& paths,
                                    size_t count);

 private:
  // A selective predicate likely to interact with the constraint set.
  Result<Predicate> TriggerPredicate(ClassId class_id);
  // A neutral predicate on the class's id-like attribute.
  Result<Predicate> NeutralPredicate(ClassId class_id);

  const Schema* schema_;
  Rng rng_;
  QueryGenOptions options_;
};

}  // namespace sqopt

#endif  // SQOPT_WORKLOAD_QUERY_GEN_H_

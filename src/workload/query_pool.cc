#include "workload/query_pool.h"

namespace sqopt {

std::vector<std::string> ExperimentQueryPool() {
  return {
      "{supplier.name} {} {supplier.rating >= 8} {} {supplier}",
      "{cargo.code} {} {cargo.weight <= 40} {} {cargo}",
      "{supplier.name, cargo.code} {} {cargo.desc = \"frozen food\"} "
      "{supplies} {supplier, cargo}",
      "{cargo.code, vehicle.vehicleNo} {} "
      "{vehicle.desc = \"refrigerated truck\"} {collects} {cargo, vehicle}",
      "{driver.name, department.name} {} {department.securityClass >= 4} "
      "{belongsTo} {driver, department}",
      "{supplier.name, cargo.code, vehicle.vehicleNo} {} "
      "{cargo.weight <= 40} {supplies, collects} "
      "{supplier, cargo, vehicle}",
  };
}

}  // namespace sqopt

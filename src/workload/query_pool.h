// The deterministic experiment-schema query pool shared by everything
// that drives traffic at an engine built from BuildExperimentSchema:
// the crash-recovery harness's differential verifier, the network load
// generator's Zipfian mix, and the server bench. One definition, three
// consumers — hoisted out of MutationScript so the fixture queries,
// the wire-protocol traffic, and the recovery oracle can never
// diverge. Each query jointly projects or predicates every class it
// names, so any semantic transformation the optimizer applies must
// preserve it whatever the relationship structure.
#ifndef SQOPT_WORKLOAD_QUERY_POOL_H_
#define SQOPT_WORKLOAD_QUERY_POOL_H_

#include <string>
#include <vector>

namespace sqopt {

// Queries that jointly touch every class and all six relationships of
// the experiment schema. Stable order: callers index into the pool
// with seeded RNGs and expect the same query for the same draw.
std::vector<std::string> ExperimentQueryPool();

}  // namespace sqopt

#endif  // SQOPT_WORKLOAD_QUERY_POOL_H_

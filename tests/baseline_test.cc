#include "baseline/best_first_optimizer.h"
#include "baseline/immediate_optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "query/query_parser.h"
#include "sqo/optimizer.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

using sqopt::testing::PaperExampleFixture;

// A cost model that charges per predicate: under it, eliminating is
// always good and introducing is always bad — which makes the
// order-dependence of the immediate-apply baseline observable.
class PredicateCountCost : public CostModelInterface {
 public:
  double QueryCost(const Query& query) const override {
    return static_cast<double>(query.AllPredicates().size()) +
           10.0 * static_cast<double>(query.classes.size());
  }
};

class BaselineTest : public PaperExampleFixture {
 protected:
  Query Q(const std::string& text) {
    auto q = ParseQuery(schema_, text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }
};

TEST_F(BaselineTest, ImmediateApplyEliminatesWhatItCan) {
  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));
  PredicateCountCost cost;
  ImmediateApplyOptimizer baseline(&schema_, catalog_.get(), &cost);
  ASSERT_OK_AND_ASSIGN(ImmediateResult result, baseline.Optimize(query));
  EXPECT_GT(result.transformations_considered, 0u);
  // Under predicate-count cost, no introduction is ever applied.
  EXPECT_LE(result.query.AllPredicates().size(),
            query.AllPredicates().size());
}

TEST_F(BaselineTest, ImmediateApplyIsOrderDependent) {
  // The classic precluding chain: with c1 processed first, the cargo
  // predicate is introduced and then c2 can eliminate supplier.name;
  // with c2 first, its antecedent (cargo.desc) is missing so nothing
  // fires on it. We surface it via the applied-transformation count
  // under a cost model that rewards every change.
  class AlwaysApply : public CostModelInterface {
   public:
    // Strictly decreasing with every edit: eliminations and
    // introductions both "pay".
    double QueryCost(const Query& query) const override {
      calls += 1;
      // Reward fewer *original* predicates but also reward introduced
      // markers: emulate an optimizer that likes index predicates.
      double cost = 100.0;
      for (const Predicate& p : query.AllPredicates()) {
        cost += p.is_attr_const() ? -1.0 : 0.5;
      }
      return cost;
    }
    mutable int calls = 0;
  };

  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));
  std::vector<ConstraintId> relevant =
      catalog_->RelevantForQuery(query.classes);
  ASSERT_GE(relevant.size(), 2u);

  AlwaysApply cost;
  ImmediateApplyOptimizer baseline(&schema_, catalog_.get(), &cost);

  // Forward and reversed orders.
  std::vector<ConstraintId> reversed(relevant.rbegin(), relevant.rend());
  ASSERT_OK_AND_ASSIGN(ImmediateResult forward,
                       baseline.OptimizeWithOrder(query, relevant));
  ASSERT_OK_AND_ASSIGN(ImmediateResult backward,
                       baseline.OptimizeWithOrder(query, reversed));
  // Both terminate; the pass counts generally differ (order matters for
  // how much work is needed), demonstrating the §4 observation. We
  // assert the weaker, always-true property that results are reached
  // and queries stay valid.
  EXPECT_OK(ValidateQuery(schema_, forward.query));
  EXPECT_OK(ValidateQuery(schema_, backward.query));
}

TEST_F(BaselineTest, DelayedChoiceNeverWorseThanImmediate) {
  // §4's dominance claim, checked under the real cost model semantics:
  // the SQO result's estimated cost <= the immediate-apply result's.
  PredicateCountCost cost;
  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));

  SemanticOptimizer sqo(&schema_, catalog_.get(), &cost);
  ASSERT_OK_AND_ASSIGN(OptimizeResult delayed, sqo.Optimize(query));

  ImmediateApplyOptimizer baseline(&schema_, catalog_.get(), &cost);
  ASSERT_OK_AND_ASSIGN(ImmediateResult immediate, baseline.Optimize(query));

  EXPECT_LE(cost.QueryCost(delayed.query), cost.QueryCost(immediate.query));
}

TEST_F(BaselineTest, BestFirstFindsCheapestState) {
  PredicateCountCost cost;
  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));
  BestFirstOptimizer search(&schema_, catalog_.get(), &cost,
                            /*max_states=*/128);
  ASSERT_OK_AND_ASSIGN(BestFirstResult result, search.Optimize(query));
  EXPECT_GT(result.states_explored, 0u);
  EXPECT_LE(result.best_cost, cost.QueryCost(query));
  EXPECT_OK(ValidateQuery(schema_, result.query));
}

TEST_F(BaselineTest, BestFirstBudgetStopsSearch) {
  PredicateCountCost cost;
  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));
  BestFirstOptimizer search(&schema_, catalog_.get(), &cost,
                            /*max_states=*/1);
  ASSERT_OK_AND_ASSIGN(BestFirstResult result, search.Optimize(query));
  EXPECT_EQ(result.states_explored, 1u);
}

TEST_F(BaselineTest, BestFirstRequiresCostModel) {
  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));
  BestFirstOptimizer search(&schema_, catalog_.get(), nullptr);
  EXPECT_FALSE(search.Optimize(query).ok());
}

TEST_F(BaselineTest, BaselinesRequirePrecompiledCatalog) {
  ConstraintCatalog fresh(&schema_);
  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));
  PredicateCountCost cost;
  ImmediateApplyOptimizer immediate(&schema_, &fresh, &cost);
  EXPECT_EQ(immediate.Optimize(query).status().code(),
            StatusCode::kFailedPrecondition);
  BestFirstOptimizer search(&schema_, &fresh, &cost);
  EXPECT_EQ(search.Optimize(query).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace sqopt

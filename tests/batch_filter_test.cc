// Differential tests for the vectorized batch filter: FilterRows must
// produce exactly the rows (in order) and exactly the predicate_evals
// count of the short-circuiting row-at-a-time loop it replaced, over
// every kernel path — dense typed masks, the fused adjacent pair,
// gather kernels, the generic fallback, demoted chunks, NaN and
// mixed-type comparisons, tombstones, and sub-segment ranges.
#include "exec/batch_filter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "catalog/schema_builder.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

class BatchFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SchemaBuilder b;
    b.AddClass("m")
        .Attr("i", ValueType::kInt)
        .Attr("d", ValueType::kDouble)
        .Attr("s", ValueType::kString);
    b.AddClass("other").Attr("x", ValueType::kInt);
    ASSERT_OK_AND_ASSIGN(schema_, b.Build());
    m_ = schema_.FindClass("m");
    i_ = schema_.ResolveQualified("m.i").value();
    d_ = schema_.ResolveQualified("m.d").value();
    s_ = schema_.ResolveQualified("m.s").value();
    x_ = schema_.ResolveQualified("other.x").value();
    extent_ = std::make_unique<Extent>(&schema_, m_);
  }

  // `rows` rows spanning several segments: ints in [0, 100), doubles
  // with a sprinkle of NaN, short strings. Every 7th row tombstoned.
  void Populate(int64_t rows) {
    std::mt19937_64 rng(20260807);
    std::uniform_int_distribution<int64_t> ints(0, 99);
    std::uniform_real_distribution<double> reals(0.0, 100.0);
    for (int64_t r = 0; r < rows; ++r) {
      Object o;
      double d = reals(rng);
      if (r % 11 == 0) d = std::numeric_limits<double>::quiet_NaN();
      o.values = {Value::Int(ints(rng)), Value::Double(d),
                  Value::String("s" + std::to_string(r % 5))};
      ASSERT_OK(extent_->Insert(std::move(o)).status());
      if (r % 7 == 3) ASSERT_OK(extent_->Delete(r));
    }
  }

  // The contract FilterRows replicates: row-at-a-time, live rows only,
  // conjuncts in order with short-circuit, one eval counted per
  // conjunct actually reached.
  void ReferenceFilter(const std::vector<Predicate>& conjuncts,
                       int64_t begin, int64_t end,
                       std::vector<int64_t>* out, uint64_t* evals) {
    begin = std::max<int64_t>(begin, 0);
    end = std::min<int64_t>(end, extent_->size());
    for (int64_t row = begin; row < end; ++row) {
      if (!extent_->IsLive(row)) continue;
      bool pass = true;
      for (const Predicate& p : conjuncts) {
        ++*evals;
        if (!EvalCompare(extent_->ValueAt(row, p.lhs().attr_id), p.op(),
                         p.rhs_value())) {
          pass = false;
          break;
        }
      }
      if (pass) out->push_back(row);
    }
  }

  void ExpectMatches(const std::vector<Predicate>& conjuncts,
                     int64_t begin, int64_t end) {
    std::vector<int64_t> want;
    uint64_t want_evals = 0;
    ReferenceFilter(conjuncts, begin, end, &want, &want_evals);

    // Both with precomputed classification and classify-on-the-fly.
    std::vector<PredicateClass> classes;
    for (const Predicate& p : conjuncts) {
      classes.push_back(ClassifyPredicate(p));
    }
    for (const std::vector<PredicateClass>& cls :
         {classes, std::vector<PredicateClass>{}}) {
      std::vector<int64_t> got;
      uint64_t got_evals = 0;
      FilterScratch scratch;
      FilterRows(*extent_, conjuncts, cls, begin, end, &scratch, &got,
                 &got_evals);
      EXPECT_EQ(got, want);
      EXPECT_EQ(got_evals, want_evals);
    }
  }

  Predicate P(const AttrRef& a, CompareOp op, Value v) {
    return Predicate::AttrConst(a, op, std::move(v));
  }

  Schema schema_;
  ClassId m_;
  AttrRef i_, d_, s_, x_;
  std::unique_ptr<Extent> extent_;
};

constexpr CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNe,
                                 CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe};

TEST_F(BatchFilterTest, IntKernelMatchesEveryOp) {
  Populate(2500);
  for (CompareOp op : kAllOps) {
    ExpectMatches({P(i_, op, Value::Int(50))}, 0, extent_->size());
  }
}

TEST_F(BatchFilterTest, DoubleKernelMatchesEveryOpWithNaNsInData) {
  Populate(2500);
  for (CompareOp op : kAllOps) {
    ExpectMatches({P(d_, op, Value::Double(50.0))}, 0, extent_->size());
  }
}

TEST_F(BatchFilterTest, NaNConstantNeverMatchesAnyOp) {
  Populate(600);
  for (CompareOp op : kAllOps) {
    ExpectMatches(
        {P(d_, op, Value::Double(std::numeric_limits<double>::quiet_NaN()))},
        0, extent_->size());
  }
}

TEST_F(BatchFilterTest, MixedIntDoubleComparisons) {
  Populate(2500);
  for (CompareOp op : kAllOps) {
    // int column vs double constant, double column vs int constant.
    ExpectMatches({P(i_, op, Value::Double(49.5))}, 0, extent_->size());
    ExpectMatches({P(d_, op, Value::Int(50))}, 0, extent_->size());
  }
}

TEST_F(BatchFilterTest, FusedIntervalPairMatchesShortCircuitCounting) {
  Populate(3000);
  // The optimizer's interval shape: lo <= attr AND attr <= hi. The
  // fused two-mask pass must count the second conjunct only for the
  // first's survivors.
  ExpectMatches({P(i_, CompareOp::kGe, Value::Int(20)),
                 P(i_, CompareOp::kLe, Value::Int(60))},
                0, extent_->size());
  // Fused over two different columns, including NaN rows.
  ExpectMatches({P(i_, CompareOp::kLt, Value::Int(80)),
                 P(d_, CompareOp::kGt, Value::Double(10.0))},
                0, extent_->size());
}

TEST_F(BatchFilterTest, GenericStringConjunctFallsBack) {
  Populate(1500);
  ExpectMatches({P(s_, CompareOp::kEq, Value::String("s2"))}, 0,
                extent_->size());
  // Generic conjunct first, then a typed one: the dense phase cannot
  // start, the gather kernels finish.
  ExpectMatches({P(s_, CompareOp::kNe, Value::String("s0")),
                 P(i_, CompareOp::kGe, Value::Int(30))},
                0, extent_->size());
}

TEST_F(BatchFilterTest, DemotedChunkStillMatches) {
  Populate(2100);
  // Null out one value mid-segment-1: that chunk demotes to generic,
  // the rest stay typed; results and counts must be unchanged vs the
  // reference on the same data.
  ASSERT_OK(extent_->SetValue(1300, i_.attr_id, Value::Null()));
  for (CompareOp op : kAllOps) {
    ExpectMatches({P(i_, op, Value::Int(50))}, 0, extent_->size());
  }
}

TEST_F(BatchFilterTest, UnresolvableAttributeMatchesNothingButCounts) {
  Populate(1200);
  // other.x does not resolve on m's extent: every comparison is false
  // (null lhs), but each live row still costs one eval.
  ExpectMatches({P(x_, CompareOp::kEq, Value::Int(1))}, 0,
                extent_->size());
  ExpectMatches({P(i_, CompareOp::kLt, Value::Int(90)),
                 P(x_, CompareOp::kNe, Value::Int(1))},
                0, extent_->size());
}

TEST_F(BatchFilterTest, NoConjunctsReturnsLiveRows) {
  Populate(1100);
  ExpectMatches({}, 0, extent_->size());
}

TEST_F(BatchFilterTest, SubRangesSplitMidSegment) {
  Populate(2600);
  const std::vector<Predicate> conjuncts = {
      P(i_, CompareOp::kGe, Value::Int(10)),
      P(d_, CompareOp::kLe, Value::Double(75.0))};
  for (auto [begin, end] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 1}, {100, 900}, {1000, 1048}, {1023, 1025}, {2599, 2600},
           {500, 2100}, {-5, 99999}}) {
    ExpectMatches(conjuncts, begin, end);
  }
}

TEST_F(BatchFilterTest, MorselSplitsSumExactlyToSequential) {
  Populate(2800);
  const std::vector<Predicate> conjuncts = {
      P(i_, CompareOp::kGe, Value::Int(10)),
      P(i_, CompareOp::kLe, Value::Int(70)),
      P(s_, CompareOp::kNe, Value::String("s3"))};
  std::vector<int64_t> whole;
  uint64_t whole_evals = 0;
  FilterScratch scratch;
  FilterRows(*extent_, conjuncts, {}, 0, extent_->size(), &scratch,
             &whole, &whole_evals);

  // Any partition into morsels must concatenate to the same survivors
  // and sum to the same eval count — the property that makes parallel
  // meters add up to the sequential meter exactly.
  for (int64_t morsel : {301, 1024, 1500}) {
    std::vector<int64_t> parts;
    uint64_t parts_evals = 0;
    for (int64_t begin = 0; begin < extent_->size(); begin += morsel) {
      FilterRows(*extent_, conjuncts, {}, begin,
                 std::min(begin + morsel, extent_->size()), &scratch,
                 &parts, &parts_evals);
    }
    EXPECT_EQ(parts, whole);
    EXPECT_EQ(parts_evals, whole_evals);
  }
}

TEST_F(BatchFilterTest, FilterCandidatesMatchesShortCircuit) {
  Populate(1600);
  // Candidate list (the index-scan path): every 3rd live row.
  std::vector<int64_t> candidates;
  for (int64_t r = 0; r < extent_->size(); r += 3) {
    if (extent_->IsLive(r)) candidates.push_back(r);
  }
  const std::vector<Predicate> conjuncts = {
      P(i_, CompareOp::kLt, Value::Int(60)),
      P(d_, CompareOp::kGe, Value::Double(5.0))};

  std::vector<int64_t> want;
  uint64_t want_evals = 0;
  for (int64_t row : candidates) {
    bool pass = true;
    for (const Predicate& p : conjuncts) {
      ++want_evals;
      if (!EvalCompare(extent_->ValueAt(row, p.lhs().attr_id), p.op(),
                       p.rhs_value())) {
        pass = false;
        break;
      }
    }
    if (pass) want.push_back(row);
  }

  std::vector<int64_t> got;
  uint64_t got_evals = 0;
  FilterCandidates(*extent_, conjuncts, candidates, 0,
                   static_cast<int64_t>(candidates.size()), &got,
                   &got_evals);
  EXPECT_EQ(got, want);
  EXPECT_EQ(got_evals, want_evals);
}

}  // namespace
}  // namespace sqopt

#include "storage/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"

namespace sqopt {
namespace {

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Equal(Value::Int(1)).empty());
  EXPECT_TRUE(tree.Scan().empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, SingleInsertAndLookup) {
  BTree tree;
  tree.Insert(Value::Int(5), 100);
  EXPECT_EQ(tree.size(), 1u);
  std::vector<int64_t> rows = tree.Equal(Value::Int(5));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 100);
  EXPECT_TRUE(tree.Equal(Value::Int(6)).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, SplitsIncreaseHeight) {
  BTree tree(/*order=*/4);  // tiny order forces splits early
  for (int i = 0; i < 100; ++i) {
    tree.Insert(Value::Int(i), i);
    ASSERT_TRUE(tree.CheckInvariants()) << "after insert " << i;
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.height(), 2);
  EXPECT_GT(tree.num_nodes(), 10u);
  for (int i = 0; i < 100; ++i) {
    std::vector<int64_t> rows = tree.Equal(Value::Int(i));
    ASSERT_EQ(rows.size(), 1u) << i;
    EXPECT_EQ(rows[0], i);
  }
}

TEST(BTreeTest, ReverseAndZigzagInsertionOrders) {
  for (int pattern = 0; pattern < 2; ++pattern) {
    BTree tree(4);
    for (int i = 0; i < 200; ++i) {
      int key = pattern == 0 ? 199 - i : (i % 2 == 0 ? i / 2 : 199 - i / 2);
      tree.Insert(Value::Int(key), key);
    }
    ASSERT_TRUE(tree.CheckInvariants());
    auto scan = tree.Scan();
    ASSERT_EQ(scan.size(), 200u);
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(scan[i].first, Value::Int(i));
    }
  }
}

TEST(BTreeTest, DuplicateKeysAllFound) {
  BTree tree(4);
  for (int i = 0; i < 60; ++i) {
    tree.Insert(Value::Int(i % 3), i);  // 20 copies of each key
  }
  ASSERT_TRUE(tree.CheckInvariants());
  for (int k = 0; k < 3; ++k) {
    std::vector<int64_t> rows = tree.Equal(Value::Int(k));
    EXPECT_EQ(rows.size(), 20u) << "key " << k;
    for (int64_t row : rows) {
      EXPECT_EQ(row % 3, k);
    }
  }
}

TEST(BTreeTest, MassiveDuplicateRun) {
  BTree tree(4);
  for (int i = 0; i < 100; ++i) tree.Insert(Value::Int(7), i);
  tree.Insert(Value::Int(3), -1);
  tree.Insert(Value::Int(9), -2);
  ASSERT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.Equal(Value::Int(7)).size(), 100u);
  EXPECT_EQ(tree.Equal(Value::Int(3)).size(), 1u);
  EXPECT_EQ(tree.Equal(Value::Int(9)).size(), 1u);
}

TEST(BTreeTest, RangeScans) {
  BTree tree(6);
  for (int i = 0; i < 50; ++i) tree.Insert(Value::Int(i), i);
  EXPECT_EQ(tree.LessThan(Value::Int(10), false).size(), 10u);
  EXPECT_EQ(tree.LessThan(Value::Int(10), true).size(), 11u);
  EXPECT_EQ(tree.GreaterThan(Value::Int(40), false).size(), 9u);
  EXPECT_EQ(tree.GreaterThan(Value::Int(40), true).size(), 10u);
  EXPECT_EQ(tree.GreaterThan(Value::Int(-5), true).size(), 50u);
  EXPECT_EQ(tree.LessThan(Value::Int(100), true).size(), 50u);
  EXPECT_TRUE(tree.LessThan(Value::Int(0), false).empty());
  EXPECT_TRUE(tree.GreaterThan(Value::Int(49), false).empty());
}

TEST(BTreeTest, StringKeys) {
  BTree tree(4);
  std::vector<std::string> words = {"delta", "alpha", "echo", "charlie",
                                    "bravo"};
  for (size_t i = 0; i < words.size(); ++i) {
    tree.Insert(Value::String(words[i]), static_cast<int64_t>(i));
  }
  ASSERT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.Equal(Value::String("charlie")).size(), 1u);
  EXPECT_EQ(tree.LessThan(Value::String("c"), false).size(), 2u);
  auto scan = tree.Scan();
  EXPECT_EQ(scan.front().first, Value::String("alpha"));
  EXPECT_EQ(scan.back().first, Value::String("echo"));
}

TEST(BTreeTest, MixedNumericKeysInterleave) {
  BTree tree(4);
  tree.Insert(Value::Int(2), 1);
  tree.Insert(Value::Double(2.5), 2);
  tree.Insert(Value::Int(3), 3);
  EXPECT_EQ(tree.GreaterThan(Value::Int(2), false).size(), 2u);
  EXPECT_EQ(tree.Equal(Value::Double(3.0)).size(), 1u);  // 3 == 3.0
}

// Randomized differential test against std::multimap across orders.
class BTreeFuzzTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(BTreeFuzzTest, MatchesMultimapOracle) {
  const auto& [order, seed] = GetParam();
  BTree tree(order);
  std::multimap<int64_t, int64_t> oracle;
  Rng rng(static_cast<uint64_t>(seed));

  for (int i = 0; i < 800; ++i) {
    int64_t key = rng.UniformInt(0, 60);  // heavy duplicate pressure
    tree.Insert(Value::Int(key), i);
    oracle.emplace(key, i);
  }
  ASSERT_TRUE(tree.CheckInvariants());
  ASSERT_EQ(tree.size(), oracle.size());

  for (int64_t key = -2; key <= 62; ++key) {
    // Equality.
    std::vector<int64_t> got = tree.Equal(Value::Int(key));
    std::vector<int64_t> want;
    auto [lo, hi] = oracle.equal_range(key);
    for (auto it = lo; it != hi; ++it) want.push_back(it->second);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "Equal(" << key << ")";

    // Ranges.
    auto count_lt = [&](bool inclusive) {
      size_t n = 0;
      for (const auto& [k, v] : oracle) {
        if (k < key || (inclusive && k == key)) ++n;
      }
      return n;
    };
    EXPECT_EQ(tree.LessThan(Value::Int(key), false).size(),
              count_lt(false));
    EXPECT_EQ(tree.LessThan(Value::Int(key), true).size(), count_lt(true));
    EXPECT_EQ(tree.GreaterThan(Value::Int(key), false).size(),
              oracle.size() - count_lt(true));
    EXPECT_EQ(tree.GreaterThan(Value::Int(key), true).size(),
              oracle.size() - count_lt(false));
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndSeeds, BTreeFuzzTest,
    ::testing::Combine(::testing::Values(4, 6, 16, 64),
                       ::testing::Values(1, 2, 3)));

TEST(BTreeTest, HeightStaysLogarithmic) {
  BTree tree(64);
  for (int i = 0; i < 100000; ++i) tree.Insert(Value::Int(i), i);
  // 100k entries at order 64: height must stay tiny.
  EXPECT_LE(tree.height(), 4);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, CloneIsStructurallyIdenticalAndIndependent) {
  BTree tree(4);  // small order: multiple levels + leaf chain
  for (int i = 0; i < 200; ++i) tree.Insert(Value::Int(i % 50), i);

  BTree copy = tree.Clone();
  EXPECT_EQ(copy.size(), tree.size());
  EXPECT_EQ(copy.height(), tree.height());
  EXPECT_EQ(copy.num_nodes(), tree.num_nodes());
  EXPECT_TRUE(copy.CheckInvariants());
  EXPECT_EQ(copy.Scan(), tree.Scan());  // leaf chain relinked in order

  // Divergence stays private in both directions.
  copy.Insert(Value::Int(999), 999);
  EXPECT_TRUE(copy.Remove(Value::Int(7), 7));
  tree.Insert(Value::Int(-5), 1);
  EXPECT_EQ(copy.Equal(Value::Int(999)).size(), 1u);
  EXPECT_TRUE(tree.Equal(Value::Int(999)).empty());
  EXPECT_EQ(tree.Equal(Value::Int(7)).size(), 4u);
  EXPECT_EQ(copy.Equal(Value::Int(7)).size(), 3u);
  EXPECT_TRUE(copy.Equal(Value::Int(-5)).empty());
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_TRUE(copy.CheckInvariants());
}

TEST(BTreeTest, MoveSemantics) {
  BTree a(4);
  for (int i = 0; i < 32; ++i) a.Insert(Value::Int(i), i);
  BTree b = std::move(a);
  EXPECT_EQ(b.size(), 32u);
  EXPECT_TRUE(b.CheckInvariants());
  EXPECT_EQ(b.Equal(Value::Int(7)).size(), 1u);
}

}  // namespace
}  // namespace sqopt

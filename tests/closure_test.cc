#include "constraints/closure.h"

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "expr/implication.h"
#include "tests/test_util.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

class ClosureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, BuildExperimentSchema());
  }
  std::vector<HornClause> Parse(const std::string& text) {
    auto r = ParseConstraintList(schema_, text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Schema schema_;
};

TEST_F(ClosureTest, PaperExampleChain) {
  // The paper's §3 example: (A = a) -> (B > 20), (B > 10) -> (C = c)
  // deduces (A = a) -> (C = c). B > 20 implies B > 10, so the clauses
  // chain even though the predicates differ.
  std::vector<HornClause> base = Parse(R"(
c1: cargo.desc = "frozen food" -> cargo.weight > 20
c2: cargo.weight > 10 -> cargo.quantity <= 499
)");
  ASSERT_OK_AND_ASSIGN(ClosureResult closure,
                       ComputeClosure(schema_, base));
  EXPECT_EQ(closure.num_base, 2u);
  EXPECT_EQ(closure.num_derived, 1u);
  const HornClause& derived = closure.clauses.back();
  EXPECT_TRUE(derived.is_derived());
  ASSERT_EQ(derived.antecedents().size(), 1u);
  EXPECT_EQ(derived.antecedents()[0].ToString(schema_),
            "cargo.desc = \"frozen food\"");
  EXPECT_EQ(derived.consequent().ToString(schema_),
            "cargo.quantity <= 499");
  EXPECT_EQ(derived.label(), "c1*c2");
}

TEST_F(ClosureTest, NoChainWhenConsequentTooWeak) {
  // B > 5 does NOT imply B > 10: no derivation.
  std::vector<HornClause> base = Parse(R"(
c1: cargo.desc = "frozen food" -> cargo.weight > 5
c2: cargo.weight > 10 -> cargo.quantity <= 499
)");
  ASSERT_OK_AND_ASSIGN(ClosureResult closure,
                       ComputeClosure(schema_, base));
  EXPECT_EQ(closure.num_derived, 0u);
}

TEST_F(ClosureTest, TransitiveChainOfThree) {
  std::vector<HornClause> base = Parse(R"(
c1: cargo.weight >= 30 -> cargo.weight >= 20
c2: cargo.weight >= 20 -> cargo.weight >= 10
c3: cargo.weight >= 10 -> cargo.weight >= 5
)");
  // Same-attribute chains derive clauses whose consequents are directly
  // implied by their antecedents (x >= 30 already implies x >= 10), so
  // prune_trivial removes all of them...
  ASSERT_OK_AND_ASSIGN(ClosureResult pruned,
                       ComputeClosure(schema_, base));
  EXPECT_EQ(pruned.num_derived, 0u);
  // ...and without pruning the full transitive set materializes:
  // 30->10, 20->5, 30->5.
  ClosureOptions keep_all;
  keep_all.prune_trivial = false;
  ASSERT_OK_AND_ASSIGN(ClosureResult full,
                       ComputeClosure(schema_, base, keep_all));
  EXPECT_EQ(full.num_derived, 3u);
}

TEST_F(ClosureTest, ClosureIsIdempotent) {
  std::vector<HornClause> base = Parse(R"(
c1: cargo.desc = "frozen food" -> cargo.weight >= 30
c2: cargo.weight >= 20 -> cargo.quantity <= 499
)");
  ASSERT_OK_AND_ASSIGN(ClosureResult once, ComputeClosure(schema_, base));
  EXPECT_EQ(once.num_derived, 1u);
  ASSERT_OK_AND_ASSIGN(ClosureResult twice,
                       ComputeClosure(schema_, once.clauses));
  EXPECT_EQ(twice.num_derived, 0u);
  EXPECT_EQ(twice.clauses.size(), once.clauses.size());
}

TEST_F(ClosureTest, MultiAntecedentChainMergesAntecedents) {
  std::vector<HornClause> base = Parse(R"(
c1: supplier.rating >= 8 -> supplier.region = "west"
c2: supplier.region = "west", cargo.desc = "frozen food" -> cargo.weight <= 40
)");
  ASSERT_OK_AND_ASSIGN(ClosureResult closure,
                       ComputeClosure(schema_, base));
  ASSERT_EQ(closure.num_derived, 1u);
  const HornClause& derived = closure.clauses.back();
  // Antecedents: rating >= 8 (from c1) + frozen food (left over from c2).
  EXPECT_EQ(derived.antecedents().size(), 2u);
}

TEST_F(ClosureTest, VacuousDerivationsPruned) {
  // Chaining would derive weight >= 20 -> weight >= 20-ish vacuities;
  // prune_trivial must keep them out.
  std::vector<HornClause> base = Parse(R"(
c1: cargo.weight >= 20 -> cargo.weight >= 10
c2: cargo.weight >= 10 -> cargo.weight >= 15
)");
  ASSERT_OK_AND_ASSIGN(ClosureResult closure,
                       ComputeClosure(schema_, base));
  for (const HornClause& c : closure.clauses) {
    // No derived clause may have its consequent implied by antecedents.
    if (c.is_derived()) {
      EXPECT_FALSE(ConjunctionImplies(c.antecedents(), c.consequent()))
          << c.ToString(schema_);
    }
  }
}

TEST_F(ClosureTest, DerivedCapEnforced) {
  // A long chain derives O(n^2) clauses; a tiny cap must trip.
  std::vector<HornClause> base;
  AttrRef weight = schema_.ResolveQualified("cargo.weight").value();
  base = SyntheticChainConstraints(schema_, weight, 24);
  ClosureOptions options;
  options.prune_trivial = false;  // keep the vacuous chain derivations
  options.max_derived = 10;
  auto result = ComputeClosure(schema_, base, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ClosureTest, MaxAntecedentsPrunesLongDerivations) {
  std::vector<HornClause> base = Parse(R"(
c1: supplier.rating >= 8, supplier.region = "west" -> cargo.weight <= 40
c2: cargo.weight <= 40, cargo.quantity <= 499, cargo.desc = "frozen food" -> vehicle.vclass >= 4
)");
  ClosureOptions options;
  options.max_antecedents = 3;
  ASSERT_OK_AND_ASSIGN(ClosureResult closure,
                       ComputeClosure(schema_, base, options));
  // Chained clause would need 4 antecedents; pruned.
  EXPECT_EQ(closure.num_derived, 0u);
}

TEST_F(ClosureTest, ExperimentConstraintsCloseWithoutBlowup) {
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> base,
                       ExperimentConstraints(schema_));
  ASSERT_OK_AND_ASSIGN(ClosureResult closure,
                       ComputeClosure(schema_, base));
  EXPECT_EQ(closure.num_base, 15u);
  EXPECT_GT(closure.num_derived, 0u);   // x1*x2 chains, etc.
  EXPECT_LT(closure.num_derived, 64u);  // and stays bounded
}

TEST_F(ClosureTest, QueryTimeChainingMatchesMaterializedRelevance) {
  // The ablation path: chaining at query time from a seed predicate set
  // fires exactly the constraints whose derived counterparts the
  // closure already materialized.
  std::vector<HornClause> base = Parse(R"(
c1: vehicle.desc = "refrigerated truck" -> cargo.desc = "frozen food"
c2: cargo.desc = "frozen food" -> supplier.region = "west"
)");
  std::vector<Predicate> seed = {
      ParsePredicate(schema_, "vehicle.desc = \"refrigerated truck\"")
          .value()};
  std::vector<ConstraintId> fired = ChainAtQueryTime(base, seed);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 0);
  EXPECT_EQ(fired[1], 1);

  // Without the seed, nothing fires.
  EXPECT_TRUE(ChainAtQueryTime(base, {}).empty());
}

TEST_F(ClosureTest, EmptyAntecedentClausesAlwaysChainForward) {
  std::vector<HornClause> base = Parse(R"(
c1: -> vehicle.vclass >= 4
c2: vehicle.vclass >= 3 -> vehicle.capacity >= 20
)");
  ASSERT_OK_AND_ASSIGN(ClosureResult closure,
                       ComputeClosure(schema_, base));
  // c1's consequent (vclass >= 4) implies c2's antecedent (vclass >= 3):
  // derived clause with empty antecedents -> capacity >= 20.
  ASSERT_EQ(closure.num_derived, 1u);
  EXPECT_TRUE(closure.clauses.back().antecedents().empty());
}

}  // namespace
}  // namespace sqopt

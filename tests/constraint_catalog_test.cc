#include "constraints/constraint_catalog.h"

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

using sqopt::testing::ExperimentFixture;

class ConstraintCatalogTest : public ExperimentFixture {};

TEST_F(ConstraintCatalogTest, PrecompileMaterializesClosure) {
  EXPECT_TRUE(catalog_->precompiled());
  EXPECT_EQ(catalog_->num_base(), 15u);
  EXPECT_GT(catalog_->num_derived(), 0u);
}

TEST_F(ConstraintCatalogTest, RejectsDuplicateConstraints) {
  auto dup = ParseConstraint(
      schema_,
      "dup: vehicle.desc = \"refrigerated truck\" -> cargo.desc = "
      "\"frozen food\"");
  ASSERT_TRUE(dup.ok());
  Status s = catalog_->AddConstraint(std::move(*dup));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(ConstraintCatalogTest, AddInvalidatesPrecompilation) {
  auto extra = ParseConstraint(
      schema_, "extra: cargo.weight <= 5 -> cargo.quantity <= 10");
  ASSERT_TRUE(extra.ok());
  ASSERT_OK(catalog_->AddConstraint(std::move(*extra)));
  EXPECT_FALSE(catalog_->precompiled());
  ASSERT_OK(catalog_->Precompile(stats_.get()));
  EXPECT_TRUE(catalog_->precompiled());
  EXPECT_EQ(catalog_->num_base(), 16u);
}

TEST_F(ConstraintCatalogTest, ClassificationMatchesClauses) {
  for (size_t i = 0; i < catalog_->clauses().size(); ++i) {
    EXPECT_EQ(catalog_->classification(static_cast<ConstraintId>(i)),
              catalog_->clause(static_cast<ConstraintId>(i)).Classify());
  }
}

TEST_F(ConstraintCatalogTest, RelevanceFiltersToQueryClasses) {
  ClassId cargo = schema_.FindClass("cargo");
  ClassId vehicle = schema_.FindClass("vehicle");
  std::vector<ConstraintId> relevant =
      catalog_->RelevantForQuery({cargo, vehicle});
  EXPECT_FALSE(relevant.empty());
  for (ConstraintId id : relevant) {
    for (ClassId ref : catalog_->clause(id).ReferencedClasses()) {
      EXPECT_TRUE(ref == cargo || ref == vehicle)
          << catalog_->clause(id).ToString(schema_);
    }
  }
}

TEST_F(ConstraintCatalogTest, SingleClassQueryGetsIntraOnly) {
  ClassId cargo = schema_.FindClass("cargo");
  std::vector<ConstraintId> relevant = catalog_->RelevantForQuery({cargo});
  EXPECT_FALSE(relevant.empty());
  for (ConstraintId id : relevant) {
    EXPECT_EQ(catalog_->classification(id), ConstraintClass::kIntra);
  }
}

TEST_F(ConstraintCatalogTest, RetrievalStatsAccumulate) {
  catalog_->ResetRetrievalStats();
  ClassId cargo = schema_.FindClass("cargo");
  ClassId vehicle = schema_.FindClass("vehicle");
  catalog_->RelevantForQuery({cargo, vehicle});
  catalog_->RelevantForQuery({cargo});
  const RetrievalStats& stats = catalog_->retrieval_stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_GE(stats.constraints_retrieved, stats.constraints_relevant);
  EXPECT_GT(stats.constraints_retrieved, 0u);
}

TEST_F(ConstraintCatalogTest, NoClosureAblationKeepsBaseOnly) {
  PrecompileOptions options;
  options.materialize_closure = false;
  ASSERT_OK(catalog_->Precompile(stats_.get(), options));
  EXPECT_EQ(catalog_->num_base(), 15u);
  EXPECT_EQ(catalog_->num_derived(), 0u);
}

TEST_F(ConstraintCatalogTest, RelevanceCompletenessRequiresClosure) {
  // The key §3 observation: with the closure, a query over {vehicle,
  // supplier} still sees the chained consequence of x1 (vehicle->cargo)
  // and x2 (cargo->supplier), because the derived clause references only
  // vehicle and supplier. Without the closure it is invisible.
  ClassId vehicle = schema_.FindClass("vehicle");
  ClassId supplier = schema_.FindClass("supplier");

  std::vector<ConstraintId> with_closure =
      catalog_->RelevantForQuery({vehicle, supplier});
  bool found_chain = false;
  for (ConstraintId id : with_closure) {
    if (catalog_->clause(id).is_derived()) found_chain = true;
  }
  EXPECT_TRUE(found_chain);

  PrecompileOptions no_closure;
  no_closure.materialize_closure = false;
  ASSERT_OK(catalog_->Precompile(stats_.get(), no_closure));
  std::vector<ConstraintId> without =
      catalog_->RelevantForQuery({vehicle, supplier});
  for (ConstraintId id : without) {
    EXPECT_FALSE(catalog_->clause(id).is_derived());
  }
  EXPECT_LT(without.size(), with_closure.size());
}

}  // namespace
}  // namespace sqopt

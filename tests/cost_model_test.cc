#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include "cost/selectivity.h"
#include "query/query_parser.h"
#include "tests/test_util.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, BuildExperimentSchema());
    // Uniform synthetic stats.
    for (const ObjectClass& oc : schema_.classes()) {
      stats_.SetClassCardinality(oc.id, 1000);
      for (AttrId attr_id : schema_.LayoutOf(oc.id)) {
        AttrStatsData data;
        data.distinct_values = 10;
        stats_.SetAttrStats(AttrRef{oc.id, attr_id}, data);
      }
    }
    for (const Relationship& rel : schema_.relationships()) {
      stats_.SetRelationshipCardinality(rel.id, 2000);
    }
    model_ = std::make_unique<CostModel>(&schema_, &stats_);
  }
  Query Q(const std::string& text) {
    auto q = ParseQuery(schema_, text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }
  Schema schema_;
  DatabaseStats stats_;
  std::unique_ptr<CostModel> model_;
};

TEST_F(CostModelTest, SelectivityEqualityUsesNdv) {
  auto p = ParsePredicate(schema_, "cargo.desc = \"frozen food\"");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(EstimateSelectivity(schema_, stats_, *p), 0.1);
}

TEST_F(CostModelTest, SelectivityRangeUsesMinMax) {
  AttrStatsData data;
  data.distinct_values = 100;
  data.min = Value::Int(0);
  data.max = Value::Int(100);
  AttrRef weight = schema_.ResolveQualified("cargo.weight").value();
  stats_.SetAttrStats(weight, data);
  auto p = ParsePredicate(schema_, "cargo.weight <= 25");
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(EstimateSelectivity(schema_, stats_, *p), 0.25, 1e-9);
  auto q = ParsePredicate(schema_, "cargo.weight >= 25");
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(EstimateSelectivity(schema_, stats_, *q), 0.75, 1e-9);
}

TEST_F(CostModelTest, SelectivityDefaultsWithoutStats) {
  DatabaseStats empty;
  auto p = ParsePredicate(schema_, "cargo.weight <= 25");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(EstimateSelectivity(schema_, empty, *p),
                   kDefaultRangeSelectivity);
}

TEST_F(CostModelTest, JoinSelectivityUsesLargerNdv) {
  AttrRef lc = schema_.ResolveQualified("driver.licenseClass").value();
  AttrRef vc = schema_.ResolveQualified("vehicle.vclass").value();
  Predicate eq = Predicate::AttrAttr(lc, CompareOp::kEq, vc);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(schema_, stats_, eq), 0.1);
}

TEST_F(CostModelTest, ClassSelectivityMultiplies) {
  Query q = Q("{cargo.code} {} {cargo.desc = \"frozen food\", "
              "cargo.weight >= 500} {} {cargo}");
  double sel = ClassSelectivity(schema_, stats_, q.selective_predicates,
                                schema_.FindClass("cargo"));
  EXPECT_LT(sel, 0.1 + 1e-9);
}

TEST_F(CostModelTest, SelectivePredicateReducesCost) {
  Query base = Q("{cargo.code} {} {} {} {cargo}");
  Query filtered =
      Q("{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}");
  // Both scan the extent, but the filtered query produces less output
  // and its indexed predicate enables index access.
  EXPECT_LT(model_->QueryCost(filtered), model_->QueryCost(base));
}

TEST_F(CostModelTest, JoinCostGrowsWithClasses) {
  Query one = Q("{cargo.code} {} {} {} {cargo}");
  Query two = Q("{cargo.code} {} {} {collects} {cargo, vehicle}");
  EXPECT_GT(model_->QueryCost(two), model_->QueryCost(one));
}

TEST_F(CostModelTest, IndexedPredicateCheaperThanScan) {
  // cargo.desc is indexed; cargo.weight is not.
  Query indexed =
      Q("{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}");
  Query scanned = Q("{cargo.code} {} {cargo.weight = 5} {} {cargo}");
  EXPECT_LT(model_->QueryCost(indexed), model_->QueryCost(scanned));
}

TEST_F(CostModelTest, RedundantPredicateAddsCostNotSavings) {
  // weight <= 40 plus the implied weight <= 50 on the same class: the
  // marginal-selectivity logic must give the weaker predicate zero
  // credit, so the version carrying it costs (slightly) more.
  Query tight = Q("{cargo.code} {} {cargo.weight <= 40} {} {cargo}");
  Query padded = Q(
      "{cargo.code} {} {cargo.weight <= 40, cargo.weight <= 50} {} "
      "{cargo}");
  EXPECT_GE(model_->QueryCost(padded), model_->QueryCost(tight));
}

TEST_F(CostModelTest, RetainIsProfitableForStrongIndexedPredicate) {
  Query q = Q("{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}");
  auto p = ParsePredicate(schema_, "cargo.desc = \"frozen food\"");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(RetainIsProfitable(*model_, q, *p));
}

TEST_F(CostModelTest, RetainNotProfitableForImpliedDuplicate) {
  Query q = Q(
      "{cargo.code} {} {cargo.weight <= 40, cargo.weight <= 50} {} "
      "{cargo}");
  auto weak = ParsePredicate(schema_, "cargo.weight <= 50");
  ASSERT_TRUE(weak.ok());
  EXPECT_FALSE(RetainIsProfitable(*model_, q, *weak));
}

TEST_F(CostModelTest, RetainVacuousForAbsentPredicate) {
  Query q = Q("{cargo.code} {} {} {} {cargo}");
  auto p = ParsePredicate(schema_, "cargo.weight <= 40");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(RetainIsProfitable(*model_, q, *p));
}

TEST_F(CostModelTest, EliminationProfitableForDanglingClass) {
  Query with = Q("{cargo.code} {} {} {collects} {cargo, vehicle}");
  Query without = Q("{cargo.code} {} {} {} {cargo}");
  EXPECT_TRUE(EliminationIsProfitable(*model_, with, without));
}

TEST_F(CostModelTest, ResultCardinalityScalesWithSelectivity) {
  Query base = Q("{cargo.code} {} {} {} {cargo}");
  Query filtered =
      Q("{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}");
  EXPECT_GT(model_->ResultCardinality(base),
            model_->ResultCardinality(filtered));
  EXPECT_NEAR(model_->ResultCardinality(base), 1000.0, 1e-6);
  EXPECT_NEAR(model_->ResultCardinality(filtered), 100.0, 1e-6);
}

TEST_F(CostModelTest, DefaultStatsNeverZero) {
  DatabaseStats empty;
  EXPECT_GT(empty.ClassCardinality(0), 0);
  EXPECT_GT(empty.RelationshipCardinality(0), 0);
  EXPECT_EQ(empty.AttrStatsFor(AttrRef{0, 0}), nullptr);
}

}  // namespace
}  // namespace sqopt

// Differential testing: the planned executor against the brute-force
// reference evaluator, across the generated workload and both the
// original and the semantically optimized form of each query. Any
// disagreement pinpoints a bug in the plan builder, the executor, or
// the optimizer's rewrite.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/plan_builder.h"
#include "exec/reference_executor.h"
#include "query/query_parser.h"
#include "query/query_printer.h"
#include "sqo/optimizer.h"
#include "tests/test_util.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

namespace sqopt {
namespace {

using sqopt::testing::ExperimentFixture;

class DifferentialTest : public ExperimentFixture,
                         public ::testing::WithParamInterface<uint64_t> {};

TEST_P(DifferentialTest, PlannedExecutorMatchesReference) {
  uint64_t seed = GetParam();
  // Small store: the reference evaluator is O(prod of cardinalities).
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"DIFF", 16, 40}, seed));

  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 3);
  QueryGenerator gen(&schema_, seed * 31 + 7);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 15));

  for (const Query& query : queries) {
    ASSERT_OK_AND_ASSIGN(ResultSet planned,
                         ExecuteQuery(*store, query, nullptr));
    ASSERT_OK_AND_ASSIGN(ResultSet reference,
                         ExecuteReference(*store, query));
    EXPECT_TRUE(planned.SameRows(reference))
        << PrintQuery(schema_, query) << "\nplanned " << planned.rows.size()
        << " rows, reference " << reference.rows.size();
  }
}

TEST_P(DifferentialTest, OptimizedQueriesAlsoMatchReference) {
  uint64_t seed = GetParam();
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"DIFF", 16, 40}, seed));

  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 3);
  QueryGenerator gen(&schema_, seed * 131 + 3);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 10));

  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  for (const Query& query : queries) {
    ASSERT_OK_AND_ASSIGN(OptimizeResult opt, optimizer.Optimize(query));
    if (opt.empty_result) {
      ASSERT_OK_AND_ASSIGN(ResultSet reference,
                           ExecuteReference(*store, query));
      EXPECT_TRUE(reference.rows.empty())
          << "contradiction flagged but reference found rows: "
          << PrintQuery(schema_, query);
      continue;
    }
    ASSERT_OK_AND_ASSIGN(ResultSet planned,
                         ExecuteQuery(*store, opt.query, nullptr));
    ASSERT_OK_AND_ASSIGN(ResultSet reference,
                         ExecuteReference(*store, opt.query));
    EXPECT_TRUE(planned.SameRows(reference))
        << PrintQuery(schema_, opt.query);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

class CyclicQueryTest : public ExperimentFixture {};

TEST_F(CyclicQueryTest, CycleClosingRelationshipEnforcedAsFilter) {
  // supplier-cargo-driver-department-supplier is a 4-cycle in the
  // experiment schema (supplies, inspects, belongsTo, shipsTo). The
  // plan expands a spanning tree and must enforce the leftover edge as
  // a membership filter — validated against the reference evaluator.
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"CYC", 16, 48}, 77));
  ASSERT_OK_AND_ASSIGN(
      Query query,
      ParseQuery(schema_,
                 "{cargo.code, department.name} {} {} "
                 "{supplies, inspects, belongsTo, shipsTo} "
                 "{supplier, cargo, driver, department}"));

  DatabaseStats stats = CollectStats(*store);
  ASSERT_OK_AND_ASSIGN(Plan plan, BuildPlan(schema_, stats, query));
  EXPECT_EQ(plan.residual_relationships.size(), 1u);
  EXPECT_NE(plan.ToString(schema_).find("Cycle filters"),
            std::string::npos);

  ASSERT_OK_AND_ASSIGN(ResultSet planned,
                       ExecuteQuery(*store, query, nullptr));
  ASSERT_OK_AND_ASSIGN(ResultSet reference,
                       ExecuteReference(*store, query));
  EXPECT_TRUE(planned.SameRows(reference))
      << "planned " << planned.rows.size() << " vs reference "
      << reference.rows.size();
  // The cycle filter genuinely restricts: a tree-shaped variant of the
  // same query returns at least as many rows.
  Query tree = query;
  tree.relationships.pop_back();
  ASSERT_OK_AND_ASSIGN(ResultSet tree_rows,
                       ExecuteQuery(*store, tree, nullptr));
  EXPECT_GE(tree_rows.rows.size(), planned.rows.size());
}

class DuplicateLinkTest : public ExperimentFixture {};

TEST_F(DuplicateLinkTest, StoreRejectsDuplicatePairs) {
  ObjectStore store(&schema_);
  ClassId cargo = schema_.FindClass("cargo");
  ClassId vehicle = schema_.FindClass("vehicle");
  RelId collects = schema_.FindRelationship("collects");
  Object c;
  c.values = {Value::String("c"), Value::String("fuel"), Value::Int(1),
              Value::Int(1)};
  ASSERT_OK(store.Insert(cargo, std::move(c)).status());
  Object v;
  v.values = {Value::Int(1), Value::String("van"), Value::Int(1),
              Value::Int(1)};
  ASSERT_OK(store.Insert(vehicle, std::move(v)).status());
  ASSERT_OK(store.Link(collects, 0, 0));
  Status dup = store.Link(collects, 0, 0);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store.NumPairs(collects), 1);
}

}  // namespace
}  // namespace sqopt

// Tests for the sqopt::Engine façade: equivalence with the hand-wired
// pipeline, prepared-query semantics (identical rows, zero re-parses),
// thread-safety of the read path (run under -fsanitize=thread to check
// the race-freedom claim), and the admin path.
#include "api/engine.h"

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "exec/plan_builder.h"
#include "query/query_parser.h"
#include "sqo/optimizer.h"
#include "tests/test_util.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

constexpr uint64_t kSeed = 20260728;
const DbSpec kSpec{"engine_test", 104, 154};

const char* kJoinQuery =
    "{cargo.code} {} {cargo.desc = \"frozen food\", "
    "supplier.region = \"west\"} {supplies} {supplier, cargo}";
const char* kSingleClassQuery =
    "{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}";
const char* kContradictionQuery =
    "{cargo.code} {} {vehicle.desc = \"refrigerated truck\", "
    "cargo.desc = \"fuel\"} {collects} {cargo, vehicle}";

Engine OpenLoadedEngine(EngineOptions options = {}) {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment(),
                             std::move(options));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  Engine engine = std::move(opened).value();
  Status s = engine.Load(DataSource::Generated(kSpec, kSeed));
  EXPECT_TRUE(s.ok()) << s.ToString();
  return engine;
}

TEST(EngineOpenTest, OpenPrecompilesCatalog) {
  ASSERT_OK_AND_ASSIGN(
      Engine engine, Engine::Open(SchemaSource::Experiment(),
                                  ConstraintSource::Experiment()));
  EXPECT_TRUE(engine.catalog().precompiled());
  EXPECT_EQ(engine.catalog().num_base(), 15u);
  EXPECT_GT(engine.catalog().num_derived(), 0u);
  EXPECT_EQ(engine.store(), nullptr);
  EXPECT_EQ(engine.cost_model(), nullptr);
}

TEST(EngineOpenTest, MergedSourcesSkipDuplicates) {
  ASSERT_OK_AND_ASSIGN(
      Engine engine,
      Engine::Open(SchemaSource::Experiment(),
                   ConstraintSource::Merge({ConstraintSource::Experiment(),
                                            ConstraintSource::Experiment()})));
  EXPECT_EQ(engine.catalog().num_base(), 15u);
}

TEST(EngineOpenTest, BadConstraintTextFailsOpen) {
  auto opened =
      Engine::Open(SchemaSource::Experiment(),
                   ConstraintSource::FromText({"nonsense -> gibberish"}));
  EXPECT_FALSE(opened.ok());
}

// Execute must produce exactly what the hand-wired pipeline produces:
// same transformed query, same rows, same metered work.
TEST(EngineExecuteTest, MatchesHandWiredPipeline) {
  Engine engine = OpenLoadedEngine();

  // The hand-wired pipeline of the pre-façade era, on identical inputs.
  ASSERT_OK_AND_ASSIGN(Schema schema, BuildExperimentSchema());
  ConstraintCatalog catalog(&schema);
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> clauses,
                       ExperimentConstraints(schema));
  for (HornClause& clause : clauses) {
    ASSERT_OK(catalog.AddConstraint(std::move(clause)));
  }
  AccessStats access(schema.num_classes());
  ASSERT_OK(catalog.Precompile(&access));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ObjectStore> store,
                       GenerateDatabase(schema, kSpec, kSeed));
  DatabaseStats stats = CollectStats(*store);
  CostModel cost_model(&schema, &stats);
  SemanticOptimizer optimizer(&schema, &catalog, &cost_model);

  for (const char* text : {kJoinQuery, kSingleClassQuery}) {
    ASSERT_OK_AND_ASSIGN(Query query, ParseQuery(schema, text));
    ASSERT_OK_AND_ASSIGN(OptimizeResult expected, optimizer.Optimize(query));
    ExecutionMeter expected_meter;
    ASSERT_OK_AND_ASSIGN(
        ResultSet expected_rows,
        ExecuteQuery(*store, expected.query, &expected_meter));

    ASSERT_OK_AND_ASSIGN(QueryOutcome outcome, engine.Execute(text));
    Query expected_query = expected.query;
    Query actual_query = outcome.transformed;
    expected_query.Normalize();
    actual_query.Normalize();
    EXPECT_EQ(expected_query, actual_query) << text;
    EXPECT_EQ(expected.report.num_firings, outcome.report.num_firings);
    EXPECT_TRUE(outcome.rows.SameRows(expected_rows)) << text;
    EXPECT_EQ(outcome.meter.rows_out, expected_meter.rows_out);
  }
}

TEST(EngineExecuteTest, UnoptimizedPreservesDistinctRows) {
  Engine engine = OpenLoadedEngine();
  for (const char* text : {kJoinQuery, kSingleClassQuery}) {
    ASSERT_OK_AND_ASSIGN(QueryOutcome raw, engine.ExecuteUnoptimized(text));
    ASSERT_OK_AND_ASSIGN(QueryOutcome opt, engine.Execute(text));
    // Class elimination preserves the distinct result set (set
    // semantics — see DESIGN.md), not bag multiplicities.
    EXPECT_TRUE(raw.rows.SameDistinctRows(opt.rows)) << text;
    EXPECT_EQ(raw.report.num_firings, 0u);
  }
}

TEST(EngineExecuteTest, ContradictionAnsweredWithoutDatabase) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(QueryOutcome outcome,
                       engine.Execute(kContradictionQuery));
  EXPECT_TRUE(outcome.answered_without_database);
  EXPECT_FALSE(outcome.executed);
  EXPECT_TRUE(outcome.rows.rows.empty());
  EXPECT_EQ(outcome.meter.instances_scanned, 0u);
  EXPECT_EQ(engine.stats().contradictions, 1u);
}

TEST(EngineExecuteTest, ExecuteWithoutDataFails) {
  ASSERT_OK_AND_ASSIGN(
      Engine engine, Engine::Open(SchemaSource::Experiment(),
                                  ConstraintSource::Experiment()));
  auto outcome = engine.Execute(kSingleClassQuery);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
  // Analyze works without data (no cost model: walkthrough mode).
  ASSERT_OK_AND_ASSIGN(QueryOutcome analyzed,
                       engine.Analyze(kSingleClassQuery));
  EXPECT_FALSE(analyzed.executed);
}

TEST(EngineExecuteTest, ParseErrorsSurface) {
  Engine engine = OpenLoadedEngine();
  EXPECT_FALSE(engine.Execute("{nope.nope} {} {} {} {nope}").ok());
  EXPECT_FALSE(engine.Execute("not a query at all").ok());
}

// The prepared path must return row-for-row what a fresh Execute
// returns, and must not re-parse.
TEST(PreparedQueryTest, ReExecutionMatchesFreshExecute) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(QueryOutcome fresh, engine.Execute(kJoinQuery));
  ASSERT_OK_AND_ASSIGN(PreparedQuery prepared, engine.Prepare(kJoinQuery));

  uint64_t parses_before = engine.stats().queries_parsed;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(QueryOutcome replay, prepared.Execute());
    EXPECT_TRUE(replay.executed);
    ASSERT_EQ(replay.rows.rows.size(), fresh.rows.rows.size());
    EXPECT_TRUE(replay.rows.SameRows(fresh.rows)) << "iteration " << i;
    EXPECT_EQ(replay.meter.rows_out, fresh.meter.rows_out);
  }
  // Zero re-parses across 10 re-executions.
  EXPECT_EQ(engine.stats().queries_parsed, parses_before);
  EXPECT_EQ(prepared.executions(), 10u);
  EXPECT_EQ(engine.stats().prepared_executions, 10u);

  Query expected = fresh.transformed;
  Query actual = prepared.transformed();
  expected.Normalize();
  actual.Normalize();
  EXPECT_EQ(expected, actual);
}

TEST(PreparedQueryTest, ContradictionPreparedNeverTouchesStore) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(PreparedQuery prepared,
                       engine.Prepare(kContradictionQuery));
  EXPECT_TRUE(prepared.answered_without_database());
  ASSERT_OK_AND_ASSIGN(QueryOutcome outcome, prepared.Execute());
  EXPECT_TRUE(outcome.answered_without_database);
  EXPECT_TRUE(outcome.rows.rows.empty());
  EXPECT_EQ(outcome.meter.instances_scanned, 0u);
}

TEST(PreparedQueryTest, HandleOutlivesEngine) {
  std::optional<Engine> engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(PreparedQuery prepared,
                       engine->Prepare(kSingleClassQuery));
  ASSERT_OK_AND_ASSIGN(QueryOutcome before, prepared.Execute());
  engine.reset();  // destroy the Engine object
  ASSERT_OK_AND_ASSIGN(QueryOutcome after, prepared.Execute());
  EXPECT_TRUE(after.rows.SameRows(before.rows));
}

TEST(PreparedQueryTest, HandleSurvivesDataReload) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(PreparedQuery prepared,
                       engine.Prepare(kSingleClassQuery));
  ASSERT_OK_AND_ASSIGN(QueryOutcome before, prepared.Execute());
  // Swap in a different database; the old handle keeps executing
  // against the store it was planned on.
  ASSERT_OK(engine.Load(
      DataSource::Generated(DbSpec{"other", 52, 77}, kSeed + 1)));
  ASSERT_OK_AND_ASSIGN(QueryOutcome after, prepared.Execute());
  EXPECT_TRUE(after.rows.SameRows(before.rows));
  // A fresh prepare sees the new store.
  ASSERT_OK_AND_ASSIGN(PreparedQuery fresh,
                       engine.Prepare(kSingleClassQuery));
  ASSERT_OK_AND_ASSIGN(QueryOutcome fresh_out, fresh.Execute());
  EXPECT_NE(fresh_out.rows.rows.size(), before.rows.rows.size());
}

TEST(PreparedQueryTest, InvalidHandleFailsCleanly) {
  PreparedQuery empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.Execute().ok());
  EXPECT_EQ(empty.executions(), 0u);
}

// Run under -fsanitize=thread to verify the race-freedom claim: N
// threads share one engine, mixing ad-hoc Execute, prepared
// re-execution, and Analyze.
TEST(EngineConcurrencyTest, ConcurrentExecuteIsRaceFree) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(QueryOutcome expected_join,
                       engine.Execute(kJoinQuery));
  ASSERT_OK_AND_ASSIGN(QueryOutcome expected_single,
                       engine.Execute(kSingleClassQuery));
  ASSERT_OK_AND_ASSIGN(PreparedQuery prepared, engine.Prepare(kJoinQuery));

  constexpr int kThreads = 4;
  constexpr int kIterations = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        auto ad_hoc = engine.Execute(
            (t + i) % 2 == 0 ? kJoinQuery : kSingleClassQuery);
        const QueryOutcome& expected =
            (t + i) % 2 == 0 ? expected_join : expected_single;
        if (!ad_hoc.ok() || !ad_hoc->rows.SameRows(expected.rows)) {
          failures.fetch_add(1);
        }
        auto replay = prepared.Execute();
        if (!replay.ok() || !replay->rows.SameRows(expected_join.rows)) {
          failures.fetch_add(1);
        }
        auto analyzed = engine.Analyze(kContradictionQuery);
        if (!analyzed.ok() || !analyzed->answered_without_database) {
          failures.fetch_add(1);
        }
        // Monitoring reads race-free against the recording writers.
        if (engine.access_stats().total() == 0) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(prepared.executions(),
            static_cast<uint64_t>(kThreads * kIterations));
  EXPECT_EQ(engine.stats().queries_executed,
            static_cast<uint64_t>(kThreads * kIterations) + 2);
}

TEST(EngineAdminTest, AddConstraintRecompiles) {
  Engine engine = OpenLoadedEngine();
  size_t base_before = engine.catalog().num_base();
  ASSERT_OK(engine.AddConstraint(
      "extra: cargo.weight <= 40 -> cargo.quantity <= 499"));
  EXPECT_EQ(engine.catalog().num_base(), base_before + 1);
  EXPECT_TRUE(engine.catalog().precompiled());
  // Duplicates are an error on the explicit admin path.
  EXPECT_FALSE(engine
                   .AddConstraint(
                       "extra: cargo.weight <= 40 -> cargo.quantity <= 499")
                   .ok());
  // The engine still serves queries afterwards.
  ASSERT_OK_AND_ASSIGN(QueryOutcome outcome,
                       engine.Execute(kSingleClassQuery));
  EXPECT_TRUE(outcome.executed);
}

TEST(EngineAdminTest, RecompileAppliesGroupingPolicy) {
  Engine engine = OpenLoadedEngine();
  PrecompileOptions precompile;
  precompile.grouping = GroupingPolicy::kBalanced;
  ASSERT_OK(engine.Recompile(precompile));
  EXPECT_EQ(engine.options().precompile.grouping,
            GroupingPolicy::kBalanced);
  ASSERT_OK_AND_ASSIGN(QueryOutcome outcome,
                       engine.Execute(kJoinQuery));
  EXPECT_TRUE(outcome.executed);
}

TEST(EngineStatsTest, CountersTrackTheReadPath) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK(engine.Execute(kSingleClassQuery).status());
  ASSERT_OK(engine.Analyze(kSingleClassQuery).status());
  ASSERT_OK_AND_ASSIGN(PreparedQuery prepared,
                       engine.Prepare(kSingleClassQuery));
  ASSERT_OK(prepared.Execute().status());

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries_parsed, 3u);
  EXPECT_EQ(stats.queries_executed, 1u);
  EXPECT_EQ(stats.queries_analyzed, 1u);
  EXPECT_EQ(stats.statements_prepared, 1u);
  EXPECT_EQ(stats.prepared_executions, 1u);
}

TEST(EngineAdminTest, SetOptimizerOptionsTakesEffect) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(QueryOutcome unlimited, engine.Analyze(kJoinQuery));
  ASSERT_GT(unlimited.report.num_firings, 1u);

  OptimizerOptions optimizer;
  optimizer.transformation_budget = 1;
  engine.SetOptimizerOptions(optimizer);
  ASSERT_OK_AND_ASSIGN(QueryOutcome budgeted, engine.Analyze(kJoinQuery));
  EXPECT_EQ(budgeted.report.num_firings, 1u);
  EXPECT_TRUE(budgeted.report.budget_exhausted);
}

TEST(EngineOptionsTest, CostModelCanBeDisabled) {
  EngineOptions options;
  options.use_cost_model = false;
  Engine engine = OpenLoadedEngine(options);
  EXPECT_EQ(engine.cost_model(), nullptr);
  ASSERT_OK_AND_ASSIGN(QueryOutcome outcome, engine.Execute(kJoinQuery));
  EXPECT_TRUE(outcome.executed);
}

}  // namespace
}  // namespace sqopt

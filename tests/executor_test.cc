#include "exec/executor.h"

#include <gtest/gtest.h>

#include "exec/plan_builder.h"
#include "query/query_parser.h"
#include "tests/test_util.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, BuildExperimentSchema());
    ASSERT_OK_AND_ASSIGN(
        store_, GenerateDatabase(schema_, DbSpec{"T", 40, 60}, /*seed=*/7));
  }
  Query Q(const std::string& text) {
    auto q = ParseQuery(schema_, text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }
  Schema schema_;
  std::unique_ptr<ObjectStore> store_;
};

TEST_F(ExecutorTest, SingleClassScan) {
  Query q = Q("{cargo.code} {} {} {} {cargo}");
  ExecutionMeter meter;
  ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecuteQuery(*store_, q, &meter));
  EXPECT_EQ(rs.rows.size(), 40u);
  EXPECT_EQ(meter.rows_out, 40u);
  EXPECT_GE(meter.instances_scanned, 40u);
}

TEST_F(ExecutorTest, SelectiveScanFiltersRows) {
  Query q = Q("{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}");
  ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecuteQuery(*store_, q, nullptr));
  // Segment 0 holds 1/4 of the rows.
  EXPECT_EQ(rs.rows.size(), 10u);
}

TEST_F(ExecutorTest, IndexedPredicateUsesIndex) {
  Query q = Q("{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}");
  DatabaseStats stats = CollectStats(*store_);
  ASSERT_OK_AND_ASSIGN(Plan plan, BuildPlan(schema_, stats, q));
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_TRUE(plan.steps[0].index_predicate.has_value());
  ExecutionMeter meter;
  ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecutePlan(*store_, plan, &meter));
  EXPECT_EQ(rs.rows.size(), 10u);
  EXPECT_EQ(meter.index_probes, 1u);
  // Only the matches were touched, not the whole extent.
  EXPECT_EQ(meter.instances_scanned, 10u);
}

TEST_F(ExecutorTest, UnindexedPredicateScans) {
  Query q = Q("{cargo.code} {} {cargo.weight <= 40} {} {cargo}");
  DatabaseStats stats = CollectStats(*store_);
  ASSERT_OK_AND_ASSIGN(Plan plan, BuildPlan(schema_, stats, q));
  EXPECT_FALSE(plan.steps[0].index_predicate.has_value());
  ExecutionMeter meter;
  ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecutePlan(*store_, plan, &meter));
  EXPECT_EQ(rs.rows.size(), 10u);  // segment 0
  EXPECT_EQ(meter.instances_scanned, 40u);
  EXPECT_EQ(meter.predicate_evals, 40u);
}

TEST_F(ExecutorTest, TwoClassJoinViaRelationship) {
  Query q = Q(
      "{cargo.code, vehicle.vehicleNo} {} "
      "{vehicle.desc = \"refrigerated truck\"} {collects} "
      "{cargo, vehicle}");
  ExecutionMeter meter;
  ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecuteQuery(*store_, q, &meter));
  // Every returned pair respects the relationship and the predicate.
  AttrRef vdesc = schema_.ResolveQualified("vehicle.desc").value();
  (void)vdesc;
  for (const auto& row : rs.rows) {
    ASSERT_EQ(row.size(), 2u);
  }
  EXPECT_GT(meter.pointer_traversals, 0u);
}

TEST_F(ExecutorTest, JoinPredicateApplied) {
  Query q = Q(
      "{driver.name} {driver.licenseClass >= vehicle.vclass} {} {drives} "
      "{driver, vehicle}");
  ASSERT_OK_AND_ASSIGN(ResultSet with, ExecuteQuery(*store_, q, nullptr));
  Query q2 = Q("{driver.name} {} {} {drives} {driver, vehicle}");
  ASSERT_OK_AND_ASSIGN(ResultSet without,
                       ExecuteQuery(*store_, q2, nullptr));
  // The join predicate can only remove rows... but segments make
  // licenseClass == vclass within a segment, so nothing is removed.
  EXPECT_EQ(with.rows.size(), without.rows.size());
}

TEST_F(ExecutorTest, EmptyResultPlanSkipsStore) {
  Query q = Q("{cargo.code} {} {} {} {cargo}");
  DatabaseStats stats = CollectStats(*store_);
  ASSERT_OK_AND_ASSIGN(Plan plan, BuildPlan(schema_, stats, q));
  plan.empty_result = true;
  ExecutionMeter meter;
  ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecutePlan(*store_, plan, &meter));
  EXPECT_TRUE(rs.rows.empty());
  EXPECT_EQ(meter.instances_scanned, 0u);
  EXPECT_EQ(meter.CostUnits(), 0.0);
}

TEST_F(ExecutorTest, ThreeClassPathJoin) {
  Query q = Q(
      "{supplier.name, vehicle.vehicleNo} {} "
      "{supplier.region = \"west\"} {supplies, collects} "
      "{supplier, cargo, vehicle}");
  ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecuteQuery(*store_, q, nullptr));
  // All results come from segment 0 by construction; spot-check shape.
  for (const auto& row : rs.rows) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row[0].type(), ValueType::kString);
    EXPECT_EQ(row[1].type(), ValueType::kInt);
  }
}

TEST_F(ExecutorTest, SameRowsComparesAsMultisets) {
  ResultSet a, b;
  a.rows = {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(2)}};
  b.rows = {{Value::Int(2)}, {Value::Int(1)}, {Value::Int(2)}};
  EXPECT_TRUE(a.SameRows(b));
  b.rows.pop_back();
  EXPECT_FALSE(a.SameRows(b));
  b.rows.push_back({Value::Int(3)});
  EXPECT_FALSE(a.SameRows(b));
}

TEST_F(ExecutorTest, MeterCostUnitsAreMonotone) {
  ExecutionMeter small, large;
  small.instances_scanned = 10;
  large.instances_scanned = 10000;
  large.predicate_evals = 10000;
  EXPECT_LT(small.CostUnits(), large.CostUnits());
}

TEST_F(ExecutorTest, CollectStatsMatchesStore) {
  DatabaseStats stats = CollectStats(*store_);
  ClassId cargo = schema_.FindClass("cargo");
  EXPECT_EQ(stats.ClassCardinality(cargo), 40);
  RelId collects = schema_.FindRelationship("collects");
  EXPECT_EQ(stats.RelationshipCardinality(collects), 60);
  AttrRef desc = schema_.ResolveQualified("cargo.desc").value();
  const AttrStatsData* attr = stats.AttrStatsFor(desc);
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->distinct_values, 4);  // one desc per segment
}

TEST_F(ExecutorTest, PlanToStringMentionsAccessPath) {
  Query q = Q("{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}");
  DatabaseStats stats = CollectStats(*store_);
  ASSERT_OK_AND_ASSIGN(Plan plan, BuildPlan(schema_, stats, q));
  std::string text = plan.ToString(schema_);
  EXPECT_NE(text.find("index"), std::string::npos);
}

}  // namespace
}  // namespace sqopt

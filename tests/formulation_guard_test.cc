// Regression tests for the formulation-time entailment guard: mutually
// implying predicates (A -> B and B -> A in the constraint set) must
// never BOTH be dropped — the §2 pitfall ("prevent the introduction of
// predicates which were previously eliminated and vice versa").
#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "exec/executor.h"
#include "query/query_parser.h"
#include "query/query_printer.h"
#include "sqo/optimizer.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

class FormulationGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, BuildExperimentSchema());
    catalog_ = std::make_unique<ConstraintCatalog>(&schema_);
    // The cycle: rating >= 8 <-> region = "west" (both directions), as
    // arises when rule mining adds the converse of an integrity rule.
    for (const char* text :
         {"fwd: supplier.rating >= 8 -> supplier.region = \"west\"",
          "bwd: supplier.region = \"west\" -> supplier.rating >= 8"}) {
      ASSERT_OK_AND_ASSIGN(HornClause clause,
                           ParseConstraint(schema_, text));
      ASSERT_OK(catalog_->AddConstraint(std::move(clause)));
    }
    stats_ = std::make_unique<AccessStats>(schema_.num_classes());
    ASSERT_OK(catalog_->Precompile(stats_.get()));
  }
  Schema schema_;
  std::unique_ptr<ConstraintCatalog> catalog_;
  std::unique_ptr<AccessStats> stats_;
};

TEST_F(FormulationGuardTest, MutualImplicationKeepsOneSide) {
  // Query holds one side of the cycle. The other side may be
  // introduced and the original may be re-tagged, but the final query
  // must retain at least one of the two — otherwise the segment filter
  // is lost entirely.
  ASSERT_OK_AND_ASSIGN(
      Query query,
      ParseQuery(schema_,
                 "{supplier.name} {} {supplier.rating >= 8} {} "
                 "{supplier}"));
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));

  auto rating = ParsePredicate(schema_, "supplier.rating >= 8");
  auto region = ParsePredicate(schema_, "supplier.region = \"west\"");
  ASSERT_TRUE(rating.ok() && region.ok());
  const auto& sel = result.query.selective_predicates;
  bool has_rating = std::find(sel.begin(), sel.end(), *rating) != sel.end();
  bool has_region = std::find(sel.begin(), sel.end(), *region) != sel.end();
  EXPECT_TRUE(has_rating || has_region)
      << PrintQuery(schema_, result.query);
}

TEST_F(FormulationGuardTest, ClassEliminationVetoedWithoutEntailment) {
  // Two-class query where supplier carries the only segment filter.
  // Eliminating supplier would drop rating >= 8 with nothing left to
  // entail it; the guard must veto the elimination (or keep an
  // entailing predicate alive — either way results are preserved).
  ASSERT_OK_AND_ASSIGN(
      Query query,
      ParseQuery(schema_,
                 "{cargo.code} {} {supplier.rating >= 8} {supplies} "
                 "{supplier, cargo}"));
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));

  // The supplier class must survive: no remaining predicate can entail
  // the rating filter once supplier's predicates are gone.
  ClassId supplier = schema_.FindClass("supplier");
  EXPECT_TRUE(result.query.ReferencesClass(supplier))
      << PrintQuery(schema_, result.query);

  // And on data, results must match.
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"G", 40, 80}, 5));
  ASSERT_OK_AND_ASSIGN(ResultSet original,
                       ExecuteQuery(*store, query, nullptr));
  ASSERT_OK_AND_ASSIGN(ResultSet transformed,
                       ExecuteQuery(*store, result.query, nullptr));
  EXPECT_TRUE(result.report.eliminated_classes.empty()
                  ? original.SameRows(transformed)
                  : original.SameDistinctRows(transformed));
}

TEST_F(FormulationGuardTest, LegitimateEliminationStillWorks) {
  // Here cargo's predicate entails the supplier filter through "bwd"'s
  // mirror — add the cross-class rule so elimination is justified.
  ASSERT_OK_AND_ASSIGN(
      HornClause cross,
      ParseConstraint(schema_,
                      "x: cargo.desc = \"frozen food\" -> supplier.region "
                      "= \"west\""));
  ASSERT_OK(catalog_->AddConstraint(std::move(cross)));
  ASSERT_OK(catalog_->Precompile(stats_.get()));

  ASSERT_OK_AND_ASSIGN(
      Query query,
      ParseQuery(schema_,
                 "{cargo.code} {} {cargo.desc = \"frozen food\", "
                 "supplier.region = \"west\"} {supplies} "
                 "{supplier, cargo}"));
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  // region = west is entailed by frozen food via x: supplier goes.
  ClassId supplier = schema_.FindClass("supplier");
  EXPECT_FALSE(result.query.ReferencesClass(supplier));
}

}  // namespace
}  // namespace sqopt

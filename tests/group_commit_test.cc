// Group commit: concurrent Apply callers batching into one
// leader/follower commit (one WAL append, one fsync, one published
// snapshot per group), per-batch typed statuses inside a group (a
// follower's constraint violation must not poison its groupmates), and
// whole-group WAL records surviving a durability roundtrip. The CI
// TSan leg runs this binary to hold the queue/leader protocol
// race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "api/mutation.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeed = 20260729;
const DbSpec kSpec{"group_commit_test", 40, 60};

const char* kRatingQuery =
    "{supplier.name} {} {supplier.rating >= 8} {} {supplier}";

Engine OpenLoadedEngine(EngineOptions options = {}) {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment(),
                             std::move(options));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  Engine engine = std::move(opened).value();
  Status s = engine.Load(DataSource::Generated(kSpec, kSeed));
  EXPECT_TRUE(s.ok()) << s.ToString();
  return engine;
}

// A constraint-respecting rating update: segment 0 suppliers carry
// ratings 8..10, every other segment 1..7 (constraint i1).
MutationBatch ValidRatingUpdate(const Engine& engine, int64_t row,
                                int salt) {
  const Schema& schema = engine.schema();
  const ClassId supplier = schema.FindClass("supplier");
  const AttrRef rating = schema.ResolveQualified("supplier.rating").value();
  MutationBatch batch;
  const int seg = SegmentOfRow(row);
  batch.Update(supplier, row, rating.attr_id,
               Value::Int(seg == 0 ? 8 + (salt % 3) : 1 + (salt % 7)));
  return batch;
}

TEST(ApplyGroupTest, EmptySpanReturnsEmptyVector) {
  Engine engine = OpenLoadedEngine();
  std::vector<MutationBatch> none;
  EXPECT_TRUE(engine.ApplyGroup(none).empty());
  EXPECT_EQ(engine.data_version(), 1u);
}

TEST(ApplyGroupTest, GroupCommitsEveryBatchWithConsecutiveVersions) {
  Engine engine = OpenLoadedEngine();
  std::vector<MutationBatch> group;
  for (int i = 0; i < 3; ++i) {
    group.push_back(ValidRatingUpdate(engine, i, i));
  }
  std::vector<Result<ApplyOutcome>> results = engine.ApplyGroup(group);
  ASSERT_EQ(results.size(), 3u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(results[i]->snapshot_version, 2u + i);
    EXPECT_EQ(results[i]->group_size, 3u);
    EXPECT_EQ(results[i]->updates, 1u);
  }
  EXPECT_EQ(engine.data_version(), 4u);
  EXPECT_EQ(engine.stats().mutation_batches_applied, 3u);
}

TEST(ApplyGroupTest, ViolationIsRejectedInGroupWithoutPoisoningMates) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  const ClassId supplier = schema.FindClass("supplier");
  const AttrRef rating = schema.ResolveQualified("supplier.rating").value();

  std::vector<MutationBatch> group;
  group.push_back(ValidRatingUpdate(engine, 0, 1));
  // Row 1 is segment 1: rating 9 violates i1.
  MutationBatch doomed;
  doomed.Update(supplier, 1, rating.attr_id, Value::Int(9));
  group.push_back(std::move(doomed));
  group.push_back(ValidRatingUpdate(engine, 2, 4));

  std::vector<Result<ApplyOutcome>> results = engine.ApplyGroup(group);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_EQ(results[0]->snapshot_version, 2u);
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kConstraintViolation);
  ASSERT_TRUE(results[2].ok()) << results[2].status().ToString();
  // The rejected batch consumed no version: its survivor successor
  // takes the next one.
  EXPECT_EQ(results[2]->snapshot_version, 3u);
  EXPECT_EQ(engine.data_version(), 3u);
  EXPECT_EQ(engine.stats().mutation_batches_applied, 2u);
  EXPECT_EQ(engine.stats().mutation_batches_rejected, 1u);
  // The doomed write is nowhere in the published snapshot.
  EXPECT_NE(engine.store()->extent(supplier).ValueAt(1, rating.attr_id),
            Value::Int(9));
}

TEST(ApplyGroupTest, MalformedBatchGetsTypedErrorAndMatesCommit) {
  Engine engine = OpenLoadedEngine();
  const ClassId supplier = engine.schema().FindClass("supplier");

  std::vector<MutationBatch> group;
  group.push_back(ValidRatingUpdate(engine, 0, 1));
  MutationBatch malformed;
  malformed.Delete(supplier, 1'000'000);  // no such row
  group.push_back(std::move(malformed));

  std::vector<Result<ApplyOutcome>> results = engine.ApplyGroup(group);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_EQ(results[0]->snapshot_version, 2u);
  ASSERT_FALSE(results[1].ok());
  // Same typed status a solo Apply of this batch would earn.
  EXPECT_EQ(results[1].status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(engine.data_version(), 2u);
}

TEST(ApplyGroupTest, EmptyBatchInGroupConsumesNoVersion) {
  Engine engine = OpenLoadedEngine();
  std::vector<MutationBatch> group;
  group.push_back(ValidRatingUpdate(engine, 0, 1));
  group.push_back(MutationBatch{});
  group.push_back(ValidRatingUpdate(engine, 2, 4));

  std::vector<Result<ApplyOutcome>> results = engine.ApplyGroup(group);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_EQ(results[0]->snapshot_version, 2u);
  ASSERT_TRUE(results[1].ok()) << results[1].status().ToString();
  EXPECT_EQ(results[1]->snapshot_version, 1u);  // pre-group snapshot
  EXPECT_EQ(results[1]->group_size, 0u);
  ASSERT_TRUE(results[2].ok()) << results[2].status().ToString();
  EXPECT_EQ(results[2]->snapshot_version, 3u);
  EXPECT_EQ(engine.data_version(), 3u);
}

TEST(ApplyGroupTest, GroupSurvivesDurabilityRoundtripAsOneWalRecord) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("sqopt_group_commit_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);

  size_t rows_before = 0, rows_after = 0;
  {
    Engine engine = OpenLoadedEngine();
    ASSERT_OK(engine.Save(dir));
    std::vector<MutationBatch> group;
    for (int i = 0; i < 3; ++i) {
      group.push_back(ValidRatingUpdate(engine, i, i));
    }
    std::vector<Result<ApplyOutcome>> results = engine.ApplyGroup(group);
    ASSERT_EQ(results.size(), 3u);
    for (const auto& r : results) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    EXPECT_EQ(engine.data_version(), 4u);
    auto out = engine.Execute(kRatingQuery);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    rows_before = out->rows.rows.size();
  }

  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir));
  EXPECT_EQ(reopened.data_version(), 4u);
  // The whole group replayed from ONE WAL record.
  EXPECT_EQ(reopened.stats().wal_records_replayed, 1u);
  auto out = reopened.Execute(kRatingQuery);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  rows_after = out->rows.rows.size();
  EXPECT_EQ(rows_before, rows_after);
  fs::remove_all(dir);
}

// The contention leg the TSan job leans on: many threads race their
// Apply calls into the group-commit queue; every write must commit,
// versions must be dense, and the engine must stay queryable
// throughout.
TEST(ApplyGroupTest, ConcurrentAppliesAllCommitWithDenseVersions) {
  Engine engine = OpenLoadedEngine();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;

  std::atomic<int> failures{0};
  std::atomic<uint64_t> grouped_commits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t row = (t * kPerThread + i) %
                            static_cast<int64_t>(kSpec.class_cardinality);
        auto result = engine.Apply(ValidRatingUpdate(engine, row, t + i));
        if (!result.ok()) {
          ++failures;
        } else if (result->group_size > 1) {
          ++grouped_commits;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.data_version(),
            1u + static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(engine.stats().mutation_batches_applied,
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Not asserted (scheduling-dependent), but reported: how many
  // commits actually shared a group on this run.
  RecordProperty("grouped_commits",
                 static_cast<int>(grouped_commits.load()));
  auto out = engine.Execute(kRatingQuery);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
}

}  // namespace
}  // namespace sqopt

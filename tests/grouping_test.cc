#include "constraints/grouping.h"

#include <gtest/gtest.h>

#include <set>

#include "constraints/constraint_parser.h"
#include "tests/test_util.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

class GroupingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, BuildExperimentSchema());
    ASSERT_OK_AND_ASSIGN(clauses_, ExperimentConstraints(schema_));
    stats_ = std::make_unique<AccessStats>(schema_.num_classes());
  }
  Schema schema_;
  std::vector<HornClause> clauses_;
  std::unique_ptr<AccessStats> stats_;
};

TEST_F(GroupingTest, EveryConstraintAssignedToReferencedClass) {
  for (GroupingPolicy policy :
       {GroupingPolicy::kArbitrary, GroupingPolicy::kBalanced}) {
    ConstraintGrouping grouping;
    grouping.Build(schema_, clauses_, policy, nullptr);
    for (size_t i = 0; i < clauses_.size(); ++i) {
      ClassId assigned = grouping.GroupOf(static_cast<ConstraintId>(i));
      std::vector<ClassId> referenced = clauses_[i].ReferencedClasses();
      EXPECT_NE(std::find(referenced.begin(), referenced.end(), assigned),
                referenced.end())
          << GroupingPolicyName(policy) << " assigned constraint " << i
          << " to a class it does not reference";
    }
  }
}

TEST_F(GroupingTest, AssignmentIsAPartition) {
  ConstraintGrouping grouping;
  grouping.Build(schema_, clauses_, GroupingPolicy::kArbitrary, nullptr);
  size_t total = 0;
  for (size_t c = 0; c < schema_.num_classes(); ++c) {
    total += grouping.group_size(static_cast<ClassId>(c));
  }
  EXPECT_EQ(total, clauses_.size());
}

TEST_F(GroupingTest, RetrievalIsComplete) {
  // Core correctness property from §3: for any query class set, every
  // relevant constraint (all referenced classes ⊆ query classes) must be
  // retrieved, under every policy.
  stats_->SetCount(schema_.FindClass("cargo"), 100);
  for (GroupingPolicy policy :
       {GroupingPolicy::kArbitrary, GroupingPolicy::kLeastFrequentlyAccessed,
        GroupingPolicy::kBalanced}) {
    ConstraintGrouping grouping;
    grouping.Build(schema_, clauses_, policy, stats_.get());
    // Try all 2^5 class subsets.
    for (unsigned mask = 1; mask < 32; ++mask) {
      std::vector<ClassId> subset;
      for (int c = 0; c < 5; ++c) {
        if (mask & (1u << c)) subset.push_back(c);
      }
      std::set<ConstraintId> retrieved;
      for (ConstraintId id : grouping.Retrieve(subset)) {
        retrieved.insert(id);
      }
      for (size_t i = 0; i < clauses_.size(); ++i) {
        bool relevant = true;
        for (ClassId ref : clauses_[i].ReferencedClasses()) {
          if (std::find(subset.begin(), subset.end(), ref) ==
              subset.end()) {
            relevant = false;
          }
        }
        if (relevant) {
          EXPECT_TRUE(retrieved.count(static_cast<ConstraintId>(i)) > 0)
              << GroupingPolicyName(policy) << " missed constraint "
              << clauses_[i].label() << " for mask " << mask;
        }
      }
    }
  }
}

TEST_F(GroupingTest, LeastFrequentPolicyAvoidsHotClasses) {
  // Make cargo scorching hot; every constraint referencing cargo and a
  // cold class must be filed under the cold class.
  ClassId cargo = schema_.FindClass("cargo");
  stats_->SetCount(cargo, 1000);
  ConstraintGrouping grouping;
  grouping.Build(schema_, clauses_,
                 GroupingPolicy::kLeastFrequentlyAccessed, stats_.get());
  for (size_t i = 0; i < clauses_.size(); ++i) {
    std::vector<ClassId> referenced = clauses_[i].ReferencedClasses();
    if (referenced.size() > 1) {
      EXPECT_NE(grouping.GroupOf(static_cast<ConstraintId>(i)), cargo)
          << clauses_[i].label();
    }
  }
  // Intra-class cargo constraints have nowhere else to go.
  ASSERT_GT(grouping.group_size(cargo), 0u);
}

TEST_F(GroupingTest, BalancedPolicyEvensGroupSizes) {
  ConstraintGrouping balanced;
  balanced.Build(schema_, clauses_, GroupingPolicy::kBalanced, nullptr);
  size_t max_size = 0, min_size = SIZE_MAX;
  for (size_t c = 0; c < schema_.num_classes(); ++c) {
    size_t size = balanced.group_size(static_cast<ClassId>(c));
    max_size = std::max(max_size, size);
    min_size = std::min(min_size, size);
  }
  // 15 constraints over 5 classes: balanced keeps the spread tight.
  EXPECT_LE(max_size - min_size, 2u);
}

TEST_F(GroupingTest, RetrieveIgnoresOutOfRangeClasses) {
  ConstraintGrouping grouping;
  grouping.Build(schema_, clauses_, GroupingPolicy::kArbitrary, nullptr);
  std::vector<ConstraintId> out = grouping.Retrieve({kInvalidClass, 999});
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace sqopt

#include "cost/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sqopt {
namespace {

std::vector<Value> Ints(std::initializer_list<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.push_back(Value::Int(x));
  return out;
}

TEST(HistogramTest, EmptyOnTooFewValues) {
  EXPECT_TRUE(Histogram::Build({}).empty());
  EXPECT_TRUE(Histogram::Build(Ints({5})).empty());
  // Constant attribute: no spread, no histogram.
  EXPECT_TRUE(Histogram::Build(Ints({5, 5, 5})).empty());
}

TEST(HistogramTest, IgnoresNonNumericValues) {
  std::vector<Value> values = {Value::String("a"), Value::Int(1),
                               Value::Int(10), Value::Null()};
  Histogram h = Histogram::Build(values);
  EXPECT_EQ(h.total(), 2);
}

TEST(HistogramTest, EmptyFallsBackToDefault) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Selectivity(CompareOp::kLt, Value::Int(5), 0.33),
                   0.33);
}

TEST(HistogramTest, UniformDataMatchesLinearEstimate) {
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(Value::Int(i));
  Histogram h = Histogram::Build(values, 16);
  EXPECT_EQ(h.total(), 1000);
  EXPECT_NEAR(h.Selectivity(CompareOp::kLt, Value::Int(250), 0.5), 0.25,
              0.02);
  EXPECT_NEAR(h.Selectivity(CompareOp::kGe, Value::Int(750), 0.5), 0.25,
              0.02);
  EXPECT_NEAR(h.Selectivity(CompareOp::kLe, Value::Int(999), 0.5), 1.0,
              0.02);
  EXPECT_NEAR(h.Selectivity(CompareOp::kGt, Value::Int(999), 0.5), 0.0,
              0.02);
}

TEST(HistogramTest, SkewedDataBeatsMinMaxInterpolation) {
  // 90% of the mass at [0, 10), a thin tail to 1000.
  std::vector<Value> values;
  Rng rng(5);
  for (int i = 0; i < 900; ++i) {
    values.push_back(Value::Int(rng.UniformInt(0, 9)));
  }
  for (int i = 0; i < 100; ++i) {
    values.push_back(Value::Int(rng.UniformInt(10, 1000)));
  }
  Histogram h = Histogram::Build(values, 32);
  // True selectivity of x < 40 is ~0.903; min/max interpolation says
  // 0.04. The histogram must land near the truth.
  double sel = h.Selectivity(CompareOp::kLt, Value::Int(40), 0.33);
  EXPECT_GT(sel, 0.80);
  EXPECT_LT(sel, 1.0);
}

TEST(HistogramTest, OutOfRangeConstants) {
  std::vector<Value> values;
  for (int i = 0; i < 100; ++i) values.push_back(Value::Int(i));
  Histogram h = Histogram::Build(values);
  EXPECT_DOUBLE_EQ(h.Selectivity(CompareOp::kLt, Value::Int(-10), 0.5),
                   0.0);
  EXPECT_DOUBLE_EQ(h.Selectivity(CompareOp::kGe, Value::Int(-10), 0.5),
                   1.0);
  EXPECT_DOUBLE_EQ(h.Selectivity(CompareOp::kGt, Value::Int(500), 0.5),
                   0.0);
  EXPECT_DOUBLE_EQ(h.Selectivity(CompareOp::kLe, Value::Int(500), 0.5),
                   1.0);
}

TEST(HistogramTest, ComplementsSumToOne) {
  std::vector<Value> values;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    values.push_back(Value::Int(rng.UniformInt(0, 200)));
  }
  Histogram h = Histogram::Build(values);
  for (int64_t c : {10, 50, 100, 150, 190}) {
    double lt = h.Selectivity(CompareOp::kLt, Value::Int(c), 0.5);
    double ge = h.Selectivity(CompareOp::kGe, Value::Int(c), 0.5);
    EXPECT_NEAR(lt + ge, 1.0, 1e-9) << c;
    double le = h.Selectivity(CompareOp::kLe, Value::Int(c), 0.5);
    double gt = h.Selectivity(CompareOp::kGt, Value::Int(c), 0.5);
    EXPECT_NEAR(le + gt, 1.0, 1e-9) << c;
  }
}

TEST(HistogramTest, MonotoneInConstant) {
  std::vector<Value> values;
  Rng rng(23);
  for (int i = 0; i < 400; ++i) {
    values.push_back(Value::Double(rng.UniformDouble() * 100));
  }
  Histogram h = Histogram::Build(values);
  double prev = -1.0;
  for (int c = 0; c <= 100; c += 5) {
    double sel = h.Selectivity(CompareOp::kLe, Value::Int(c), 0.5);
    EXPECT_GE(sel, prev - 1e-9) << c;
    prev = sel;
  }
}

TEST(HistogramTest, NonNumericConstantUsesFallback) {
  std::vector<Value> values = Ints({1, 2, 3, 4, 5});
  Histogram h = Histogram::Build(values);
  EXPECT_DOUBLE_EQ(
      h.Selectivity(CompareOp::kLt, Value::String("x"), 0.42), 0.42);
}

TEST(HistogramTest, IncrementalAddMatchesFullRebuild) {
  // The commit path patches histograms in place instead of
  // recollecting; an in-range Add must land exactly where a rebuild
  // over the extended value set would put it.
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(Value::Int(i));
  Histogram patched = Histogram::Build(values, 16);
  ASSERT_TRUE(patched.Add(42.0));
  ASSERT_TRUE(patched.Add(901.0));

  values.push_back(Value::Int(42));
  values.push_back(Value::Int(901));
  // Same [lo, hi] (both new values are interior), so the rebuilt
  // buckets are directly comparable.
  Histogram rebuilt = Histogram::Build(values, 16);
  ASSERT_EQ(patched.total(), rebuilt.total());
  ASSERT_EQ(patched.num_buckets(), rebuilt.num_buckets());
  for (int b = 0; b < patched.num_buckets(); ++b) {
    EXPECT_EQ(patched.bucket_count(b), rebuilt.bucket_count(b)) << b;
  }
}

TEST(HistogramTest, IncrementalRemoveMatchesFullRebuild) {
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(Value::Int(i));
  Histogram patched = Histogram::Build(values, 16);
  ASSERT_TRUE(patched.Remove(500.0));

  // Rebuild without one interior 500 (min/max survive, so the bucket
  // geometry is unchanged).
  std::vector<Value> without;
  bool dropped = false;
  for (const Value& v : values) {
    if (!dropped && v == Value::Int(500)) {
      dropped = true;
      continue;
    }
    without.push_back(v);
  }
  Histogram rebuilt = Histogram::Build(without, 16);
  ASSERT_EQ(patched.total(), rebuilt.total());
  for (int b = 0; b < patched.num_buckets(); ++b) {
    EXPECT_EQ(patched.bucket_count(b), rebuilt.bucket_count(b)) << b;
  }
}

TEST(HistogramTest, AddRemoveRefuseWhatNeedsARebuild) {
  Histogram empty;
  EXPECT_FALSE(empty.Add(1.0));
  EXPECT_FALSE(empty.Remove(1.0));

  std::vector<Value> values = Ints({0, 10, 20, 30, 40});
  Histogram h = Histogram::Build(values, 4);
  // Out of [lo, hi]: the bucket range would have to grow.
  EXPECT_FALSE(h.Add(-1.0));
  EXPECT_FALSE(h.Add(41.0));
  // Removing from a bucket that holds nothing would go negative.
  Histogram drained = Histogram::Build(Ints({0, 0, 0, 40}), 4);
  ASSERT_TRUE(drained.Remove(40.0));
  EXPECT_FALSE(drained.Remove(40.0));
  // In-range add/remove round-trips the total.
  const int64_t total = h.total();
  ASSERT_TRUE(h.Add(20.0));
  ASSERT_TRUE(h.Remove(20.0));
  EXPECT_EQ(h.total(), total);
}

}  // namespace
}  // namespace sqopt

#include "constraints/horn_clause.h"

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "tests/test_util.h"
#include "workload/dbgen.h"
#include "workload/example_schema.h"

namespace sqopt {
namespace {

class HornClauseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, BuildExperimentSchema());
  }
  HornClause C(const std::string& text) {
    auto c = ParseConstraint(schema_, text);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).value();
  }
  Schema schema_;
};

TEST_F(HornClauseTest, ParseLabeled) {
  HornClause c =
      C("c1: vehicle.desc = \"refrigerated truck\" -> cargo.desc = "
        "\"frozen food\"");
  EXPECT_EQ(c.label(), "c1");
  EXPECT_EQ(c.antecedents().size(), 1u);
  EXPECT_TRUE(c.consequent().is_attr_const());
}

TEST_F(HornClauseTest, ParseUnlabeled) {
  HornClause c = C("cargo.weight <= 40 -> cargo.quantity <= 499");
  EXPECT_EQ(c.label(), "");
  EXPECT_EQ(c.antecedents().size(), 1u);
}

TEST_F(HornClauseTest, ParseMultipleAntecedents) {
  HornClause c =
      C("cargo.weight <= 40, cargo.quantity <= 499 -> cargo.desc = "
        "\"frozen food\"");
  EXPECT_EQ(c.antecedents().size(), 2u);
}

TEST_F(HornClauseTest, ParseEmptyAntecedents) {
  // Class-membership-only constraint (paper's c3/c4).
  HornClause c = C("-> driver.licenseClass >= vehicle.vclass");
  EXPECT_TRUE(c.antecedents().empty());
  EXPECT_TRUE(c.consequent().is_attr_attr());
}

TEST_F(HornClauseTest, ParseDeduplicatesAntecedents) {
  HornClause c =
      C("cargo.weight <= 40, cargo.weight <= 40 -> cargo.quantity <= 499");
  EXPECT_EQ(c.antecedents().size(), 1u);
}

TEST_F(HornClauseTest, ParseRejectsVacuous) {
  EXPECT_FALSE(
      ParseConstraint(schema_, "cargo.weight <= 40 -> cargo.weight <= 40")
          .ok());
}

TEST_F(HornClauseTest, ParseRejectsMissingArrow) {
  EXPECT_FALSE(ParseConstraint(schema_, "cargo.weight <= 40").ok());
}

TEST_F(HornClauseTest, ParseRejectsEmptyConsequent) {
  EXPECT_FALSE(ParseConstraint(schema_, "cargo.weight <= 40 -> ").ok());
}

TEST_F(HornClauseTest, ClassifyIntraVsInter) {
  EXPECT_EQ(C("cargo.weight <= 40 -> cargo.quantity <= 499").Classify(),
            ConstraintClass::kIntra);
  EXPECT_EQ(C("vehicle.desc = \"van\" -> cargo.desc = \"parcels\"")
                .Classify(),
            ConstraintClass::kInter);
  // Attr-attr consequent spanning two classes is inter even with a
  // single-class antecedent.
  EXPECT_EQ(
      C("driver.rank = \"senior\" -> driver.licenseClass >= vehicle.vclass")
          .Classify(),
      ConstraintClass::kInter);
}

TEST_F(HornClauseTest, ReferencedClassesSortedDeduped) {
  HornClause c = C(
      "vehicle.desc = \"refrigerated truck\", cargo.weight <= 40 -> "
      "cargo.desc = \"frozen food\"");
  std::vector<ClassId> classes = c.ReferencedClasses();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_LT(classes[0], classes[1]);
}

TEST_F(HornClauseTest, StructuralEqualityIgnoresOrderAndLabel) {
  HornClause a =
      C("a: cargo.weight <= 40, cargo.quantity <= 499 -> cargo.desc = "
        "\"frozen food\"");
  HornClause b =
      C("b: cargo.quantity <= 499, cargo.weight <= 40 -> cargo.desc = "
        "\"frozen food\"");
  EXPECT_TRUE(a.StructurallyEquals(b));
  EXPECT_EQ(a.StructuralHash(), b.StructuralHash());

  HornClause c =
      C("cargo.weight <= 40 -> cargo.desc = \"frozen food\"");
  EXPECT_FALSE(a.StructurallyEquals(c));
}

TEST_F(HornClauseTest, ToStringRoundTripsThroughParser) {
  HornClause c =
      C("c9: vehicle.desc = \"van\" -> cargo.desc = \"parcels\"");
  ASSERT_OK_AND_ASSIGN(HornClause again,
                       ParseConstraint(schema_, c.ToString(schema_)));
  EXPECT_TRUE(c.StructurallyEquals(again));
  EXPECT_EQ(again.label(), "c9");
}

TEST_F(HornClauseTest, ParseConstraintListSkipsCommentsAndBlanks) {
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> list,
                       ParseConstraintList(schema_, R"(
# comment line

a: cargo.weight <= 40 -> cargo.quantity <= 499
b: vehicle.vclass >= 4 -> vehicle.desc = "refrigerated truck"
)"));
  EXPECT_EQ(list.size(), 2u);
}

TEST(Figure22Test, ParsesAllFiveConstraints) {
  auto schema = BuildFigure21Schema();
  ASSERT_TRUE(schema.ok());
  auto constraints = Figure22Constraints(*schema);
  ASSERT_TRUE(constraints.ok()) << constraints.status().ToString();
  ASSERT_EQ(constraints->size(), 5u);
  // c4 (managers are research staff) is the only intra-class one.
  int intra = 0;
  for (const HornClause& c : *constraints) {
    if (c.Classify() == ConstraintClass::kIntra) ++intra;
  }
  EXPECT_EQ(intra, 1);
}

}  // namespace
}  // namespace sqopt

#include "expr/implication.h"

#include <gtest/gtest.h>

#include <tuple>

#include "tests/test_util.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

class ImplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, BuildExperimentSchema());
    weight_ = schema_.ResolveQualified("cargo.weight").value();
    quantity_ = schema_.ResolveQualified("cargo.quantity").value();
  }
  Predicate W(CompareOp op, int64_t v) {
    return Predicate::AttrConst(weight_, op, Value::Int(v));
  }
  Schema schema_;
  AttrRef weight_;
  AttrRef quantity_;
};

TEST_F(ImplicationTest, Reflexive) {
  Predicate p = W(CompareOp::kLe, 40);
  EXPECT_TRUE(Implies(p, p));
}

TEST_F(ImplicationTest, DifferentAttributesNeverImply) {
  Predicate a = W(CompareOp::kEq, 5);
  Predicate b =
      Predicate::AttrConst(quantity_, CompareOp::kGe, Value::Int(0));
  EXPECT_FALSE(Implies(a, b));
}

TEST_F(ImplicationTest, EqualityImpliesConsistentComparisons) {
  Predicate eq5 = W(CompareOp::kEq, 5);
  EXPECT_TRUE(Implies(eq5, W(CompareOp::kLe, 5)));
  EXPECT_TRUE(Implies(eq5, W(CompareOp::kLe, 10)));
  EXPECT_TRUE(Implies(eq5, W(CompareOp::kLt, 6)));
  EXPECT_TRUE(Implies(eq5, W(CompareOp::kGe, 5)));
  EXPECT_TRUE(Implies(eq5, W(CompareOp::kGt, 4)));
  EXPECT_TRUE(Implies(eq5, W(CompareOp::kNe, 6)));
  EXPECT_FALSE(Implies(eq5, W(CompareOp::kLt, 5)));
  EXPECT_FALSE(Implies(eq5, W(CompareOp::kNe, 5)));
  EXPECT_FALSE(Implies(eq5, W(CompareOp::kEq, 6)));
}

TEST_F(ImplicationTest, RangeStrengthening) {
  EXPECT_TRUE(Implies(W(CompareOp::kGt, 10), W(CompareOp::kGt, 5)));
  EXPECT_TRUE(Implies(W(CompareOp::kGt, 10), W(CompareOp::kGe, 10)));
  EXPECT_TRUE(Implies(W(CompareOp::kGe, 10), W(CompareOp::kGe, 5)));
  EXPECT_FALSE(Implies(W(CompareOp::kGe, 10), W(CompareOp::kGt, 10)));
  EXPECT_TRUE(Implies(W(CompareOp::kLt, 5), W(CompareOp::kLt, 10)));
  EXPECT_TRUE(Implies(W(CompareOp::kLt, 5), W(CompareOp::kLe, 5)));
  EXPECT_FALSE(Implies(W(CompareOp::kLe, 5), W(CompareOp::kLt, 5)));
  EXPECT_FALSE(Implies(W(CompareOp::kLt, 10), W(CompareOp::kLt, 5)));
}

TEST_F(ImplicationTest, RangeImpliesDisequality) {
  EXPECT_TRUE(Implies(W(CompareOp::kLt, 5), W(CompareOp::kNe, 5)));
  EXPECT_TRUE(Implies(W(CompareOp::kLt, 5), W(CompareOp::kNe, 7)));
  EXPECT_FALSE(Implies(W(CompareOp::kLt, 5), W(CompareOp::kNe, 3)));
  EXPECT_TRUE(Implies(W(CompareOp::kGe, 5), W(CompareOp::kNe, 4)));
  EXPECT_FALSE(Implies(W(CompareOp::kGe, 5), W(CompareOp::kNe, 5)));
}

TEST_F(ImplicationTest, OnlyEqualityImpliesEquality) {
  EXPECT_TRUE(Implies(W(CompareOp::kEq, 5), W(CompareOp::kEq, 5)));
  EXPECT_FALSE(Implies(W(CompareOp::kLe, 5), W(CompareOp::kEq, 5)));
  EXPECT_FALSE(Implies(W(CompareOp::kGe, 5), W(CompareOp::kEq, 5)));
}

TEST_F(ImplicationTest, StringEqualityImpliesDisequality) {
  AttrRef desc = schema_.ResolveQualified("cargo.desc").value();
  Predicate frozen = Predicate::AttrConst(desc, CompareOp::kEq,
                                          Value::String("frozen food"));
  Predicate not_fuel =
      Predicate::AttrConst(desc, CompareOp::kNe, Value::String("fuel"));
  EXPECT_TRUE(Implies(frozen, not_fuel));
  Predicate not_frozen = Predicate::AttrConst(
      desc, CompareOp::kNe, Value::String("frozen food"));
  EXPECT_FALSE(Implies(frozen, not_frozen));
}

TEST_F(ImplicationTest, AttrAttrImplication) {
  AttrRef lc = schema_.ResolveQualified("driver.licenseClass").value();
  AttrRef vc = schema_.ResolveQualified("vehicle.vclass").value();
  Predicate lt = Predicate::AttrAttr(lc, CompareOp::kLt, vc);
  Predicate le = Predicate::AttrAttr(lc, CompareOp::kLe, vc);
  Predicate ne = Predicate::AttrAttr(lc, CompareOp::kNe, vc);
  Predicate eq = Predicate::AttrAttr(lc, CompareOp::kEq, vc);
  Predicate ge = Predicate::AttrAttr(lc, CompareOp::kGe, vc);
  EXPECT_TRUE(Implies(lt, le));
  EXPECT_TRUE(Implies(lt, ne));
  EXPECT_TRUE(Implies(eq, le));
  EXPECT_TRUE(Implies(eq, ge));
  EXPECT_FALSE(Implies(le, lt));
  EXPECT_FALSE(Implies(ne, lt));
  EXPECT_FALSE(Implies(le, ge));
}

TEST_F(ImplicationTest, AttrAttrRespectsCanonicalFlip) {
  AttrRef lc = schema_.ResolveQualified("driver.licenseClass").value();
  AttrRef vc = schema_.ResolveQualified("vehicle.vclass").value();
  // Written in opposite orders; canonicalization must line them up.
  Predicate a = Predicate::AttrAttr(lc, CompareOp::kLt, vc);
  Predicate b = Predicate::AttrAttr(vc, CompareOp::kGt, lc);
  EXPECT_TRUE(Implies(a, b));
  EXPECT_TRUE(Implies(b, a));
}

TEST_F(ImplicationTest, MixedFormsNeverImply) {
  AttrRef lc = schema_.ResolveQualified("driver.licenseClass").value();
  AttrRef vc = schema_.ResolveQualified("vehicle.vclass").value();
  Predicate join = Predicate::AttrAttr(lc, CompareOp::kLe, vc);
  EXPECT_FALSE(Implies(join, W(CompareOp::kLe, 100)));
  EXPECT_FALSE(Implies(W(CompareOp::kLe, 100), join));
}

TEST_F(ImplicationTest, ConjunctionImpliesSinglePremise) {
  std::vector<Predicate> premises = {W(CompareOp::kGt, 10)};
  EXPECT_TRUE(ConjunctionImplies(premises, W(CompareOp::kGt, 5)));
  EXPECT_FALSE(ConjunctionImplies(premises, W(CompareOp::kGt, 20)));
}

TEST_F(ImplicationTest, ConjunctionImpliesViaIntervalNarrowing) {
  // No single premise implies 10 <= w, but together they pin w = 10.
  std::vector<Predicate> premises = {W(CompareOp::kGe, 10),
                                     W(CompareOp::kLe, 10)};
  EXPECT_TRUE(ConjunctionImplies(premises, W(CompareOp::kEq, 10)));
  EXPECT_TRUE(ConjunctionImplies(premises, W(CompareOp::kNe, 11)));
  EXPECT_FALSE(ConjunctionImplies(premises, W(CompareOp::kEq, 11)));
}

TEST_F(ImplicationTest, UnsatisfiablePremisesImplyAnything) {
  std::vector<Predicate> premises = {W(CompareOp::kGt, 10),
                                     W(CompareOp::kLt, 5)};
  EXPECT_TRUE(ConjunctionImplies(premises, W(CompareOp::kEq, 999)));
}

TEST_F(ImplicationTest, EmptyPremisesImplyNothing) {
  EXPECT_FALSE(ConjunctionImplies({}, W(CompareOp::kGe, 0)));
}

TEST_F(ImplicationTest, MutuallyExclusiveConstants) {
  EXPECT_TRUE(MutuallyExclusive(W(CompareOp::kEq, 5), W(CompareOp::kEq, 6)));
  EXPECT_TRUE(MutuallyExclusive(W(CompareOp::kLt, 5), W(CompareOp::kGt, 6)));
  EXPECT_FALSE(
      MutuallyExclusive(W(CompareOp::kLe, 5), W(CompareOp::kGe, 5)));
  EXPECT_TRUE(MutuallyExclusive(W(CompareOp::kLt, 5), W(CompareOp::kGe, 5)));
}

TEST_F(ImplicationTest, MutuallyExclusiveAttrAttr) {
  AttrRef lc = schema_.ResolveQualified("driver.licenseClass").value();
  AttrRef vc = schema_.ResolveQualified("vehicle.vclass").value();
  Predicate lt = Predicate::AttrAttr(lc, CompareOp::kLt, vc);
  Predicate gt = Predicate::AttrAttr(lc, CompareOp::kGt, vc);
  Predicate eq = Predicate::AttrAttr(lc, CompareOp::kEq, vc);
  Predicate le = Predicate::AttrAttr(lc, CompareOp::kLe, vc);
  EXPECT_TRUE(MutuallyExclusive(lt, gt));
  EXPECT_TRUE(MutuallyExclusive(lt, eq));
  EXPECT_FALSE(MutuallyExclusive(le, eq));
}

// Exhaustive soundness sweep: for every (opA, cA, opB, cB) combination
// over a small integer domain, Implies(a, b) == true must mean every
// domain point satisfying a satisfies b.
using SweepCase = std::tuple<CompareOp, int, CompareOp, int>;

class ImplicationSoundnessTest
    : public ::testing::TestWithParam<SweepCase> {
 protected:
  static Schema* schema_;
  static AttrRef weight_;
  static void SetUpTestSuite() {
    auto s = BuildExperimentSchema();
    ASSERT_TRUE(s.ok());
    schema_ = new Schema(std::move(s).value());
    weight_ = schema_->ResolveQualified("cargo.weight").value();
  }
  static void TearDownTestSuite() {
    delete schema_;
    schema_ = nullptr;
  }
};

Schema* ImplicationSoundnessTest::schema_ = nullptr;
AttrRef ImplicationSoundnessTest::weight_;

TEST_P(ImplicationSoundnessTest, ImpliesIsSoundAndCompleteOnIntegers) {
  const auto& [op_a, c_a, op_b, c_b] = GetParam();
  Predicate a =
      Predicate::AttrConst(weight_, op_a, Value::Int(c_a));
  Predicate b =
      Predicate::AttrConst(weight_, op_b, Value::Int(c_b));
  bool claimed = Implies(a, b);
  // Ground truth by enumeration over a domain comfortably wider than
  // the constants.
  bool truth = true;
  for (int x = -10; x <= 10; ++x) {
    bool sat_a = EvalCompare(Value::Int(x), op_a, Value::Int(c_a));
    bool sat_b = EvalCompare(Value::Int(x), op_b, Value::Int(c_b));
    if (sat_a && !sat_b) {
      truth = false;
      break;
    }
  }
  // Soundness: claimed implies truth. (Completeness over dense domains
  // differs from integers — e.g. x > 4 does not densely imply x >= 5 —
  // so only soundness is asserted.)
  if (claimed) {
    EXPECT_TRUE(truth) << a.ToString(*schema_) << " =/=> "
                       << b.ToString(*schema_);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, ImplicationSoundnessTest,
    ::testing::Combine(
        ::testing::Values(CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                          CompareOp::kLe, CompareOp::kGt, CompareOp::kGe),
        ::testing::Values(-2, 0, 3),
        ::testing::Values(CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                          CompareOp::kLe, CompareOp::kGt, CompareOp::kGe),
        ::testing::Values(-2, 0, 3)));

}  // namespace
}  // namespace sqopt

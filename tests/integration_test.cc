// End-to-end integration: generate data, optimize, plan, execute, meter
// — the full Table 4.2 pipeline at test scale.
#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/plan_builder.h"
#include "query/query_parser.h"
#include "query/query_printer.h"
#include "sqo/optimizer.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

using sqopt::testing::ExperimentFixture;

class IntegrationTest : public ExperimentFixture {
 protected:
  void SetUp() override {
    ExperimentFixture::SetUp();
    ASSERT_OK_AND_ASSIGN(
        store_, GenerateDatabase(schema_, DbSpec{"IT", 104, 208}, 2024));
    stats_db_ = CollectStats(*store_);
    cost_model_ = std::make_unique<CostModel>(&schema_, &stats_db_);
  }
  Query Q(const std::string& text) {
    auto q = ParseQuery(schema_, text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }
  double MeasuredCost(const Query& q, bool empty = false) {
    Plan plan;
    if (empty) {
      plan.empty_result = true;
    } else {
      auto p = BuildPlan(schema_, stats_db_, q);
      EXPECT_TRUE(p.ok()) << p.status().ToString();
      plan = std::move(p).value();
    }
    ExecutionMeter meter;
    auto rs = ExecutePlan(*store_, plan, &meter);
    EXPECT_TRUE(rs.ok());
    return meter.CostUnits();
  }

  std::unique_ptr<ObjectStore> store_;
  DatabaseStats stats_db_;
  std::unique_ptr<CostModel> cost_model_;
};

TEST_F(IntegrationTest, IndexIntroductionSpeedsUpExecution) {
  // weight <= 40 is unindexed and selects segment 0; the optimizer can
  // introduce desc = "frozen food" (x-constraints chain: weight has no
  // direct constraint, so use the quantity route): quantity >= 500
  // implies weight >= 41 via i6 — instead test the refrigerated-truck
  // query where x1 introduces an indexed cargo predicate.
  Query query = Q(R"(
(SELECT {cargo.code, vehicle.vehicleNo} {}
        {vehicle.desc = "refrigerated truck"}
        {collects} {cargo, vehicle}))");

  SemanticOptimizer optimizer(&schema_, catalog_.get(), cost_model_.get());
  ASSERT_OK_AND_ASSIGN(OptimizeResult opt, optimizer.Optimize(query));
  ASSERT_FALSE(opt.empty_result);

  // The optimizer introduced the indexed cargo.desc predicate.
  bool has_cargo_desc = false;
  for (const Predicate& p : opt.query.selective_predicates) {
    if (p.ToString(schema_) == "cargo.desc = \"frozen food\"") {
      has_cargo_desc = true;
    }
  }
  EXPECT_TRUE(has_cargo_desc);

  // Results identical; measured cost not worse.
  ASSERT_OK_AND_ASSIGN(ResultSet orig, ExecuteQuery(*store_, query, nullptr));
  ASSERT_OK_AND_ASSIGN(ResultSet trans,
                       ExecuteQuery(*store_, opt.query, nullptr));
  EXPECT_TRUE(orig.SameRows(trans));
  EXPECT_LE(MeasuredCost(opt.query), MeasuredCost(query) * 1.05);
}

TEST_F(IntegrationTest, ContradictoryQueryExecutesForFree) {
  Query query = Q(R"(
(SELECT {cargo.code} {}
        {vehicle.desc = "refrigerated truck", cargo.desc = "fuel"}
        {collects} {cargo, vehicle}))");
  SemanticOptimizer optimizer(&schema_, catalog_.get(), cost_model_.get());
  ASSERT_OK_AND_ASSIGN(OptimizeResult opt, optimizer.Optimize(query));
  EXPECT_TRUE(opt.empty_result);

  // Original execution confirms the result is indeed empty.
  ASSERT_OK_AND_ASSIGN(ResultSet orig, ExecuteQuery(*store_, query, nullptr));
  EXPECT_TRUE(orig.rows.empty());
  // And the short-circuited execution costs nothing.
  EXPECT_EQ(MeasuredCost(opt.query, /*empty=*/true), 0.0);
  EXPECT_GT(MeasuredCost(query), 0.0);
}

TEST_F(IntegrationTest, ClassEliminationRemovesJoinWork) {
  // supplier contributes nothing but a constraint-implied filter: after
  // x2-based elimination the supplier join disappears.
  Query query = Q(R"(
(SELECT {cargo.code} {}
        {cargo.desc = "frozen food", supplier.region = "west"}
        {supplies} {supplier, cargo}))");
  SemanticOptimizer optimizer(&schema_, catalog_.get(), cost_model_.get());
  ASSERT_OK_AND_ASSIGN(OptimizeResult opt, optimizer.Optimize(query));

  ClassId supplier = schema_.FindClass("supplier");
  EXPECT_FALSE(opt.query.ReferencesClass(supplier));

  ASSERT_OK_AND_ASSIGN(ResultSet orig, ExecuteQuery(*store_, query, nullptr));
  ASSERT_OK_AND_ASSIGN(ResultSet trans,
                       ExecuteQuery(*store_, opt.query, nullptr));
  // Class elimination drops the supplier join, which *can* change row
  // multiplicity when a cargo links to several suppliers — the paper
  // (and King's rule) treat path queries as semi-join shaped, and our
  // workload compares distinct content. Here we check containment-free
  // equality of the distinct row sets.
  EXPECT_TRUE(orig.SameDistinctRows(trans));
  EXPECT_LT(MeasuredCost(opt.query), MeasuredCost(query));
}

TEST_F(IntegrationTest, NeutralQueryUnharmed) {
  Query query = Q("{driver.name} {} {driver.licenseClass >= 1} {} {driver}");
  SemanticOptimizer optimizer(&schema_, catalog_.get(), cost_model_.get());
  ASSERT_OK_AND_ASSIGN(OptimizeResult opt, optimizer.Optimize(query));
  ASSERT_OK_AND_ASSIGN(ResultSet orig, ExecuteQuery(*store_, query, nullptr));
  ASSERT_OK_AND_ASSIGN(ResultSet trans,
                       ExecuteQuery(*store_, opt.query, nullptr));
  EXPECT_TRUE(orig.SameRows(trans));
}

}  // namespace
}  // namespace sqopt

#include "expr/interval.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

TEST(IntervalTest, UnconstrainedContainsEverything) {
  Interval i;
  EXPECT_FALSE(i.empty());
  EXPECT_TRUE(i.Contains(Value::Int(-1000)));
  EXPECT_TRUE(i.Contains(Value::Int(1000)));
}

TEST(IntervalTest, EqualityPinsPoint) {
  Interval i;
  EXPECT_TRUE(i.Add(CompareOp::kEq, Value::Int(5)));
  EXPECT_TRUE(i.IsPoint());
  EXPECT_EQ(i.PointValue().value(), Value::Int(5));
  EXPECT_TRUE(i.Contains(Value::Int(5)));
  EXPECT_FALSE(i.Contains(Value::Int(6)));
}

TEST(IntervalTest, ConflictingEqualities) {
  Interval i;
  EXPECT_TRUE(i.Add(CompareOp::kEq, Value::Int(5)));
  EXPECT_FALSE(i.Add(CompareOp::kEq, Value::Int(6)));
  EXPECT_TRUE(i.empty());
}

TEST(IntervalTest, RangeNarrowing) {
  Interval i;
  EXPECT_TRUE(i.Add(CompareOp::kGe, Value::Int(10)));
  EXPECT_TRUE(i.Add(CompareOp::kLe, Value::Int(20)));
  EXPECT_TRUE(i.Contains(Value::Int(10)));
  EXPECT_TRUE(i.Contains(Value::Int(20)));
  EXPECT_FALSE(i.Contains(Value::Int(9)));
  EXPECT_FALSE(i.Contains(Value::Int(21)));
  // Narrow further.
  EXPECT_TRUE(i.Add(CompareOp::kGt, Value::Int(15)));
  EXPECT_FALSE(i.Contains(Value::Int(15)));
  EXPECT_TRUE(i.Contains(Value::Int(16)));
}

TEST(IntervalTest, EmptyOnCrossedBounds) {
  Interval i;
  EXPECT_TRUE(i.Add(CompareOp::kGt, Value::Int(10)));
  EXPECT_FALSE(i.Add(CompareOp::kLt, Value::Int(5)));
  EXPECT_TRUE(i.empty());
  // Once empty, stays empty.
  EXPECT_FALSE(i.Add(CompareOp::kEq, Value::Int(7)));
}

TEST(IntervalTest, OpenBoundsTouchingAreEmpty) {
  Interval i;
  EXPECT_TRUE(i.Add(CompareOp::kGt, Value::Int(5)));
  EXPECT_FALSE(i.Add(CompareOp::kLt, Value::Int(5)));
}

TEST(IntervalTest, ClosedBoundsTouchingArePoint) {
  Interval i;
  EXPECT_TRUE(i.Add(CompareOp::kGe, Value::Int(5)));
  EXPECT_TRUE(i.Add(CompareOp::kLe, Value::Int(5)));
  EXPECT_TRUE(i.IsPoint());
}

TEST(IntervalTest, NotEqualExcludesPoint) {
  Interval i;
  EXPECT_TRUE(i.Add(CompareOp::kNe, Value::Int(5)));
  EXPECT_FALSE(i.Contains(Value::Int(5)));
  EXPECT_TRUE(i.Contains(Value::Int(4)));
}

TEST(IntervalTest, NotEqualKillsPinnedPoint) {
  Interval i;
  EXPECT_TRUE(i.Add(CompareOp::kEq, Value::Int(5)));
  EXPECT_FALSE(i.Add(CompareOp::kNe, Value::Int(5)));
  EXPECT_TRUE(i.empty());
}

TEST(IntervalTest, EqualityOutsideExistingBoundsIsEmpty) {
  Interval i;
  EXPECT_TRUE(i.Add(CompareOp::kLt, Value::Int(10)));
  EXPECT_FALSE(i.Add(CompareOp::kEq, Value::Int(10)));
}

TEST(IntervalTest, StringDomain) {
  Interval i;
  EXPECT_TRUE(i.Add(CompareOp::kEq, Value::String("frozen food")));
  EXPECT_FALSE(i.Add(CompareOp::kEq, Value::String("fuel")));
}

TEST(IntervalTest, IncomparableTypesCollapse) {
  Interval i;
  EXPECT_TRUE(i.Add(CompareOp::kGe, Value::Int(1)));
  // Mixing a string bound with a numeric region is a type error in the
  // predicate set; the interval reports unsatisfiable (conservative for
  // contradiction detection is fine: such a conjunction matches no
  // tuple anyway, because comparisons evaluate to false).
  EXPECT_FALSE(i.Add(CompareOp::kLe, Value::String("x")));
}

class SatisfiabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, BuildExperimentSchema());
  }
  Predicate P(const std::string& text) {
    auto p = ParsePredicate(schema_, text);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(p).value();
  }
  Schema schema_;
};

TEST_F(SatisfiabilityTest, EmptySetSatisfiable) {
  EXPECT_TRUE(ConjunctionSatisfiable({}));
}

TEST_F(SatisfiabilityTest, CompatiblePredicates) {
  EXPECT_TRUE(ConjunctionSatisfiable(
      {P("cargo.weight >= 10"), P("cargo.weight <= 40"),
       P("cargo.desc = \"frozen food\"")}));
}

TEST_F(SatisfiabilityTest, ContradictingEqualities) {
  EXPECT_FALSE(ConjunctionSatisfiable(
      {P("cargo.desc = \"frozen food\""), P("cargo.desc = \"fuel\"")}));
}

TEST_F(SatisfiabilityTest, ContradictingRanges) {
  EXPECT_FALSE(ConjunctionSatisfiable(
      {P("cargo.weight > 50"), P("cargo.weight <= 40")}));
}

TEST_F(SatisfiabilityTest, DifferentAttributesIndependent) {
  EXPECT_TRUE(ConjunctionSatisfiable(
      {P("cargo.weight > 50"), P("cargo.quantity <= 40")}));
}

TEST_F(SatisfiabilityTest, SelfContradictoryJoinPredicate) {
  AttrRef w = schema_.ResolveQualified("cargo.weight").value();
  Predicate self = Predicate::AttrAttr(w, CompareOp::kNe, w);
  EXPECT_FALSE(ConjunctionSatisfiable({self}));
  Predicate self_eq = Predicate::AttrAttr(w, CompareOp::kEq, w);
  EXPECT_TRUE(ConjunctionSatisfiable({self_eq}));
}

TEST_F(SatisfiabilityTest, CrossAttributeJoinIsConservative) {
  // x < y plus y < x is unsatisfiable, but cross-attribute reasoning is
  // out of scope — the check must stay conservative (true).
  EXPECT_TRUE(ConjunctionSatisfiable(
      {P("driver.licenseClass < vehicle.vclass"),
       P("driver.licenseClass > vehicle.vclass")}));
}

}  // namespace
}  // namespace sqopt

// Seeded randomized differential fuzzer for the transactional write
// path: interleaved query/mutation schedules against one Engine, with
// every query checked after every commit against TWO oracles —
//
//   1. reference_executor: brute-force evaluation of the ORIGINAL
//      query over the engine's current snapshot (catches semantic-
//      optimizer unsoundness and executor bugs against mutated data);
//   2. a naive re-Load oracle: a second Engine freshly Load()ed from a
//      deep clone of a shadow store that replayed the same committed
//      batches (catches divergence of the incrementally maintained
//      indexes / statistics / histograms from scratch-built state).
//
// The generator produces constraint-consistent mutations (the segment
// value model of workload/dbgen), plus deliberate violations that must
// be rejected with kConstraintViolation and leave the snapshot version
// untouched. Everything derives from one fixed seed, printed on any
// failure via SCOPED_TRACE.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "exec/reference_executor.h"
#include "shard/sharded_engine.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

constexpr uint64_t kSeed = 20260729;
const DbSpec kSpec{"mutation_fuzz", 40, 60};

// Round budget: PR CI runs the defaults; the nightly soak workflow
// scales both schedules up via SQOPT_FUZZ_ROUNDS (7500 rounds of
// schedule A ≈ 50k+ operations) without touching the code.
int RoundsFromEnv(int default_rounds) {
  const char* env = std::getenv("SQOPT_FUZZ_ROUNDS");
  if (env == nullptr) return default_rounds;
  const int rounds = std::atoi(env);
  return rounds > 0 ? rounds : default_rounds;
}

// Replays a batch onto a plain mutable store with the same pending-
// insert handle resolution Engine::Apply uses. The shadow store is the
// raw material of the re-Load oracle.
Status ApplyToShadow(ObjectStore& store, const MutationBatch& batch,
                     std::vector<int64_t>* inserted) {
  auto resolve = [&](int64_t row) {
    return row >= 0 ? row : (*inserted)[static_cast<size_t>(-1 - row)];
  };
  for (const Mutation& op : batch.ops()) {
    switch (op.kind) {
      case Mutation::Kind::kInsert: {
        SQOPT_ASSIGN_OR_RETURN(int64_t row,
                               store.Insert(op.class_id, op.object));
        inserted->push_back(row);
        break;
      }
      case Mutation::Kind::kUpdate:
        SQOPT_RETURN_IF_ERROR(store.UpdateAttribute(
            op.class_id, resolve(op.row), op.attr_id, op.value));
        break;
      case Mutation::Kind::kDelete:
        SQOPT_RETURN_IF_ERROR(store.Delete(op.class_id, resolve(op.row)));
        break;
      case Mutation::Kind::kLink:
        SQOPT_RETURN_IF_ERROR(store.Link(op.rel_id, resolve(op.row_a),
                                         resolve(op.row_b)));
        break;
      case Mutation::Kind::kUnlink:
        SQOPT_RETURN_IF_ERROR(store.Unlink(op.rel_id, resolve(op.row_a),
                                           resolve(op.row_b)));
        break;
    }
  }
  return Status::OK();
}

// The fuzz driver shared by every schedule, templated over the engine
// under test: a single Engine or the sharded coordinator — both expose
// the same Apply/Execute/Parse/store()/data_version() surface, and the
// ShardedEngine's store() is the planning head's unpartitioned global
// store, so the reference executor and the cardinality invariants read
// it exactly like a single engine's.
template <typename EngineT>
class MutationFuzzerT {
 public:
  MutationFuzzerT(EngineT* engine, uint64_t seed)
      : engine_(engine), schema_(engine->schema()), rng_(seed) {
    supplier_ = schema_.FindClass("supplier");
    cargo_ = schema_.FindClass("cargo");
    vehicle_ = schema_.FindClass("vehicle");
    driver_ = schema_.FindClass("driver");
    department_ = schema_.FindClass("department");
    class_order_ = {supplier_, cargo_, vehicle_, driver_, department_};

    auto shadow = GenerateDatabase(schema_, kSpec, kSeed);
    EXPECT_TRUE(shadow.ok());
    shadow_ = std::move(*shadow);

    segments_.resize(schema_.num_classes());
    for (ClassId cid : class_order_) {
      for (int64_t row = 0; row < shadow_->NumObjects(cid); ++row) {
        segments_[cid].push_back(SegmentOfRow(row));
      }
    }

    auto oracle = Engine::Open(SchemaSource::Experiment(),
                               ConstraintSource::Experiment());
    EXPECT_TRUE(oracle.ok());
    oracle_.emplace(std::move(*oracle));
  }

  uint64_t operations() const { return operations_; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t rejected() const { return rejected_; }

  // One committed (or rejected) batch + its bookkeeping.
  void MutateRound(bool allow_structure_changes) {
    if (rng_.Bernoulli(0.08)) {
      ApplyViolatingOp();
      return;
    }
    MutationBatch batch;
    batch_dead_.clear();
    batch_links_.clear();
    batch_unlinks_.clear();
    const int ops = static_cast<int>(rng_.UniformInt(1, 3));
    for (int i = 0; i < ops; ++i) {
      StageValidOp(&batch, allow_structure_changes);
    }
    if (batch.empty()) return;

    ASSERT_OK_AND_ASSIGN(ApplyOutcome out, engine_->Apply(batch));
    std::vector<int64_t> shadow_inserted;
    ASSERT_OK(ApplyToShadow(*shadow_, batch, &shadow_inserted));
    ASSERT_EQ(out.inserted_rows, shadow_inserted)
        << "engine and shadow disagree on inserted row ids";
    operations_ += batch.size();

    // The engine's committed snapshot and the shadow replay must agree
    // on cardinalities (cheap invariant; full-state agreement is what
    // the query differentials below establish).
    for (ClassId cid : class_order_) {
      ASSERT_EQ(engine_->store()->NumLiveObjects(cid),
                shadow_->NumLiveObjects(cid));
    }
    for (const Relationship& rel : schema_.relationships()) {
      ASSERT_EQ(engine_->store()->NumPairs(rel.id),
                shadow_->NumPairs(rel.id));
    }
  }

  // Runs `text` through the optimized engine, the brute-force
  // reference, and (when `with_reload_oracle`) a fresh Load of the
  // shadow, requiring identical distinct rows everywhere.
  void CheckQuery(const std::string& text, bool with_reload_oracle) {
    ASSERT_OK_AND_ASSIGN(QueryOutcome opt, engine_->Execute(text));
    if (opt.plan_cache_hit) ++cache_hits_;
    ++operations_;

    ASSERT_OK_AND_ASSIGN(Query query, engine_->Parse(text));
    ASSERT_OK_AND_ASSIGN(ResultSet reference,
                         ExecuteReference(*engine_->store(), query));
    ++operations_;
    ASSERT_TRUE(opt.rows.SameDistinctRows(reference))
        << "optimized executor diverged from reference_executor on: "
        << text << " (optimized " << opt.rows.rows.size()
        << " rows, reference " << reference.rows.size() << ")";

    if (with_reload_oracle) {
      std::set<ClassId> all_classes(class_order_.begin(),
                                    class_order_.end());
      std::set<RelId> all_rels;
      for (const Relationship& rel : schema_.relationships()) {
        all_rels.insert(rel.id);
      }
      ASSERT_OK(oracle_->Load(DataSource::FromStore(
          shadow_->CloneForWrite(all_classes, all_rels))));
      ASSERT_OK_AND_ASSIGN(QueryOutcome fresh, oracle_->Execute(text));
      ++operations_;
      ASSERT_TRUE(opt.rows.SameDistinctRows(fresh.rows))
          << "incrementally-maintained engine diverged from the "
          << "re-Load oracle on: " << text;
    }
  }

 private:
  int64_t PickLiveRow(ClassId cid, int want_segment) {
    std::vector<int64_t> candidates;
    const auto& seg = segments_[cid];
    for (int64_t row = 0; row < static_cast<int64_t>(seg.size()); ++row) {
      if (seg[row] < 0) continue;
      if (want_segment >= 0 && seg[row] != want_segment) continue;
      // Rows a delete earlier in this batch will tombstone are off
      // limits: a later op naming one would (correctly) fail the whole
      // batch, which is not what a VALID schedule stages.
      if (batch_dead_.count({cid, row}) > 0) continue;
      candidates.push_back(row);
    }
    if (candidates.empty()) return -1;
    return candidates[rng_.Index(candidates.size())];
  }

  // A segment-consistent value for one mutable attribute of `cid`.
  // Attributes that other constraints pin (desc, region, vclass, ...)
  // are never touched; name-like and range attributes vary freely
  // within the segment's legal range.
  bool StageSegmentUpdate(MutationBatch* batch, ClassId cid) {
    int64_t row = PickLiveRow(cid, -1);
    if (row < 0) return false;
    int seg = segments_[cid][row];
    auto attr = [&](const char* name) {
      return schema_.FindAttribute(cid, name).attr_id;
    };
    if (cid == supplier_) {
      if (rng_.Bernoulli(0.5)) {
        batch->Update(cid, row, attr("name"),
                      Value::String("s" + std::to_string(rng_.Next() % 997)));
      } else {
        batch->Update(cid, row, attr("rating"),
                      Value::Int(seg == 0 ? rng_.UniformInt(8, 10)
                                          : rng_.UniformInt(1, 7)));
      }
    } else if (cid == cargo_) {
      switch (rng_.Index(3)) {
        case 0:
          batch->Update(cid, row, attr("code"),
                        Value::String("c" + std::to_string(rng_.Next() % 997)));
          break;
        case 1:
          batch->Update(cid, row, attr("quantity"),
                        Value::Int(seg == 0 ? rng_.UniformInt(1, 499)
                                            : rng_.UniformInt(500, 1000)));
          break;
        default:
          batch->Update(cid, row, attr("weight"),
                        Value::Int(seg == 0 ? rng_.UniformInt(10, 40)
                                            : rng_.UniformInt(41, 100)));
      }
    } else if (cid == vehicle_) {
      if (rng_.Bernoulli(0.5)) {
        batch->Update(cid, row, attr("vehicleNo"),
                      Value::Int(rng_.UniformInt(200000, 299999)));
      } else {
        batch->Update(cid, row, attr("capacity"),
                      Value::Int(seg <= 1 ? rng_.UniformInt(20, 50)
                                          : rng_.UniformInt(5, 19)));
      }
    } else if (cid == driver_) {
      batch->Update(cid, row, attr("name"),
                    Value::String("d" + std::to_string(rng_.Next() % 997)));
    } else {
      batch->Update(cid, row, attr("budget"),
                    Value::Int(seg == 0 ? rng_.UniformInt(100000, 200000)
                                        : rng_.UniformInt(10000, 99999)));
    }
    return true;
  }

  // One full "world": an object per class, one segment, linked
  // diagonally across all 6 relationships — exactly the shape
  // GenerateDatabase produces, so totality (and with it class
  // elimination) is preserved.
  void StageWorldInsert(MutationBatch* batch) {
    int seg = static_cast<int>(rng_.Index(kNumSegments));
    int64_t ordinal = next_ordinal_++;
    std::vector<int64_t> handle(schema_.num_classes(), -1);
    for (ClassId cid : class_order_) {
      auto obj = MakeSegmentObject(schema_, cid, seg, ordinal);
      ASSERT_TRUE(obj.ok()) << obj.status().ToString();
      handle[cid] = batch->Insert(cid, std::move(*obj));
      pending_segments_.push_back({cid, seg});
    }
    for (const Relationship& rel : schema_.relationships()) {
      batch->Link(rel.id, handle[rel.a], handle[rel.b]);
    }
  }

  void StageValidOp(MutationBatch* batch, bool allow_structure_changes) {
    const double roll = rng_.UniformDouble();
    ClassId cid = class_order_[rng_.Index(class_order_.size())];
    const bool crowded = shadow_->NumLiveObjects(cid) > 240;

    if (!allow_structure_changes) {
      // Elimination schedule: only totality-preserving mutations.
      if (roll < 0.25 && !crowded) {
        StageWorldInsert(batch);
      } else {
        StageSegmentUpdate(batch, cid);
      }
      return;
    }
    if (roll < 0.07 && !crowded) {
      StageWorldInsert(batch);
    } else if (roll < 0.20 && !crowded) {
      // Unlinked single insert: legal because the query pool projects
      // or predicates every class (class elimination can't fire).
      int seg = static_cast<int>(rng_.Index(kNumSegments));
      auto obj = MakeSegmentObject(schema_, cid, seg, next_ordinal_++);
      ASSERT_TRUE(obj.ok()) << obj.status().ToString();
      batch->Insert(cid, std::move(*obj));
      pending_segments_.push_back({cid, seg});
    } else if (roll < 0.35) {
      int64_t row = PickLiveRow(cid, -1);
      if (row >= 0) {
        batch->Delete(cid, row);
        batch_dead_.insert({cid, row});
        pending_deletes_.push_back({cid, row});
      }
    } else if (roll < 0.45) {
      // Same-segment link between existing rows.
      const Relationship& rel =
          schema_.relationship(static_cast<RelId>(
              rng_.Index(schema_.num_relationships())));
      int seg = static_cast<int>(rng_.Index(kNumSegments));
      int64_t a = PickLiveRow(rel.a, seg);
      int64_t b = PickLiveRow(rel.b, seg);
      if (a < 0 || b < 0) return;
      const std::vector<int64_t>& partners =
          shadow_->Partners(rel.id, rel.a, a);
      if (std::find(partners.begin(), partners.end(), b) !=
          partners.end()) {
        return;  // already linked; skip rather than stage a duplicate
      }
      if (!batch_links_.insert({rel.id, a, b}).second) return;
      batch->Link(rel.id, a, b);
    } else if (roll < 0.52) {
      // Unlink an existing pair.
      const Relationship& rel =
          schema_.relationship(static_cast<RelId>(
              rng_.Index(schema_.num_relationships())));
      int64_t a = PickLiveRow(rel.a, -1);
      if (a < 0) return;
      const std::vector<int64_t>& partners =
          shadow_->Partners(rel.id, rel.a, a);
      if (partners.empty()) return;
      int64_t b = partners[rng_.Index(partners.size())];
      if (batch_dead_.count({rel.b, b}) > 0) return;  // cascade got it
      if (!batch_unlinks_.insert({rel.id, a, b}).second) return;
      batch->Unlink(rel.id, a, b);
    } else {
      StageSegmentUpdate(batch, cid);
    }
  }

  // A write the validator must reject; the snapshot version and the
  // shadow stay untouched.
  void ApplyViolatingOp() {
    const uint64_t version = engine_->data_version();
    MutationBatch batch;
    switch (rng_.Index(3)) {
      case 0: {  // i1: rating >= 8 -> region = west, on a non-west row
        int64_t row = PickLiveRow(supplier_, 1 + static_cast<int>(
                                                 rng_.Index(3)));
        if (row < 0) return;
        batch.Update(supplier_, row,
                     schema_.FindAttribute(supplier_, "rating").attr_id,
                     Value::Int(9));
        break;
      }
      case 1: {  // i2: frozen food -> weight <= 40
        int64_t row = PickLiveRow(cargo_, 0);
        if (row < 0) return;
        batch.Update(cargo_, row,
                     schema_.FindAttribute(cargo_, "weight").attr_id,
                     Value::Int(80));
        break;
      }
      default: {  // x3 via a cross-segment collects link
        RelId collects = schema_.FindRelationship("collects");
        int64_t c = PickLiveRow(cargo_, 0);
        int64_t v = PickLiveRow(vehicle_, 1);
        if (c < 0 || v < 0) return;
        batch.Link(collects, c, v);
        break;
      }
    }
    auto result = engine_->Apply(batch);
    ++operations_;
    ASSERT_FALSE(result.ok())
        << "validator accepted a constraint-violating write";
    ASSERT_EQ(result.status().code(), StatusCode::kConstraintViolation)
        << result.status().ToString();
    ASSERT_EQ(engine_->data_version(), version)
        << "rejected batch still published a snapshot";
    ++rejected_;
  }

 public:
  // Row-id bookkeeping that must happen AFTER a commit succeeds.
  void SettleBookkeeping() {
    for (const auto& [cid, seg] : pending_segments_) {
      segments_[cid].push_back(seg);
    }
    pending_segments_.clear();
    for (const auto& [cid, row] : pending_deletes_) {
      segments_[cid][row] = -1;
    }
    pending_deletes_.clear();
  }

 private:
  EngineT* engine_;
  const Schema& schema_;
  Rng rng_;
  std::unique_ptr<ObjectStore> shadow_;
  std::optional<Engine> oracle_;
  std::vector<std::vector<int>> segments_;  // class -> row -> segment, -1 dead
  std::vector<std::pair<ClassId, int>> pending_segments_;
  std::vector<std::pair<ClassId, int64_t>> pending_deletes_;
  std::set<std::pair<ClassId, int64_t>> batch_dead_;
  std::set<std::tuple<RelId, int64_t, int64_t>> batch_links_;
  std::set<std::tuple<RelId, int64_t, int64_t>> batch_unlinks_;
  std::vector<ClassId> class_order_;
  ClassId supplier_, cargo_, vehicle_, driver_, department_;
  int64_t next_ordinal_ = 0;
  uint64_t operations_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t rejected_ = 0;
};

using MutationFuzzer = MutationFuzzerT<Engine>;

// Schedule A's query pool: every query projects or predicates every
// class it touches, so every semantic transformation except class
// elimination is fair game whatever the relationship structure.
std::vector<std::string> FullOpQueryPool() {
  return {
      "{supplier.name} {} {supplier.rating >= 8} {} {supplier}",
      "{cargo.code} {} {cargo.weight <= 40} {} {cargo}",
      "{supplier.name, cargo.code} {} {cargo.desc = \"frozen food\"} "
      "{supplies} {supplier, cargo}",
      "{cargo.code, vehicle.vehicleNo} {} "
      "{vehicle.desc = \"refrigerated truck\"} {collects} {cargo, vehicle}",
      "{driver.name, department.name} {} {department.securityClass >= 4} "
      "{belongsTo} {driver, department}",
  };
}

Engine OpenLoadedEngine() {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  Engine engine = std::move(opened).value();
  EXPECT_OK(engine.Load(DataSource::Generated(kSpec, kSeed)));
  return engine;
}

// Schedule A: the full op mix (inserts, updates, deletes, links,
// unlinks, violations) against queries that project or predicate every
// class they touch, so every semantic transformation except class
// elimination is fair game whatever the relationship structure.
TEST(MutationFuzzTest, InterleavedDifferentialSchedule) {
  SCOPED_TRACE(::testing::Message() << "fuzz seed=" << kSeed);
  Engine engine = OpenLoadedEngine();
  MutationFuzzer fuzz(&engine, kSeed);

  const std::vector<std::string> pool = FullOpQueryPool();
  const std::string three_class =
      "{supplier.name, cargo.code, vehicle.vehicleNo} {} "
      "{cargo.weight <= 40} {supplies, collects} "
      "{supplier, cargo, vehicle}";

  Rng pick(kSeed ^ 0xABCD);
  const int kRounds = RoundsFromEnv(800);
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE(::testing::Message()
                 << "round=" << round << " seed=" << kSeed);
    fuzz.MutateRound(/*allow_structure_changes=*/true);
    if (::testing::Test::HasFatalFailure()) return;
    fuzz.SettleBookkeeping();
    const bool reload_oracle = round % 5 == 0;
    fuzz.CheckQuery(pool[pick.Index(pool.size())], reload_oracle);
    if (::testing::Test::HasFatalFailure()) return;
    fuzz.CheckQuery(pool[pick.Index(pool.size())], false);
    if (::testing::Test::HasFatalFailure()) return;
    if (round % 25 == 0) {
      fuzz.CheckQuery(three_class, false);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GE(fuzz.operations(), 5000u)
      << "schedule shrank below the acceptance floor";
  EXPECT_GT(fuzz.cache_hits(), 0u)
      << "no query ever hit the plan cache: threshold epoching broken?";
  EXPECT_GT(fuzz.rejected(), 0u)
      << "no violating write was ever generated";
  EXPECT_GT(engine.stats().mutation_batches_applied, 0u);
}

// Schedule C: the schedule-A op mix driven through the sharded
// coordinator at a fleet size that separates every segment, so the
// SAME differential oracles now also cover write routing, per-shard
// handle renumbering, the scatter/provenance merge, and the cross-
// shard pre-check (the violating collects link crosses shards here,
// so it must be rejected by the coordinator with the same typed
// status a single engine's validator produces).
TEST(MutationFuzzTest, ShardedFleetStaysDifferentiallyCorrect) {
  SCOPED_TRACE(::testing::Message() << "fuzz seed=" << kSeed + 2);
  shard::ShardOptions options;
  options.shards = 4;
  auto opened = shard::ShardedEngine::Open(
      SchemaSource::Experiment(), ConstraintSource::Experiment(), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  shard::ShardedEngine fleet = std::move(*opened);
  ASSERT_OK(fleet.Load(DataSource::Generated(kSpec, kSeed)));
  MutationFuzzerT<shard::ShardedEngine> fuzz(&fleet, kSeed + 2);

  const std::vector<std::string> pool = FullOpQueryPool();
  Rng pick(kSeed ^ 0xF1EE7);
  const int kRounds = RoundsFromEnv(800);
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE(::testing::Message()
                 << "round=" << round << " seed=" << kSeed + 2
                 << " shards=" << options.shards);
    fuzz.MutateRound(/*allow_structure_changes=*/true);
    if (::testing::Test::HasFatalFailure()) return;
    fuzz.SettleBookkeeping();
    fuzz.CheckQuery(pool[pick.Index(pool.size())], round % 5 == 0);
    if (::testing::Test::HasFatalFailure()) return;
    fuzz.CheckQuery(pool[pick.Index(pool.size())], false);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GE(fuzz.operations(), 5000u)
      << "schedule shrank below the acceptance floor";
  EXPECT_GT(fuzz.rejected(), 0u)
      << "no violating write was ever generated";
  EXPECT_GT(fleet.stats().mutation_batches_applied, 0u);
}

// Schedule B: totality-preserving mutations only (world inserts +
// segment updates) against dangling-class queries, so CLASS ELIMINATION
// fires and must stay sound as the database grows and drifts.
TEST(MutationFuzzTest, ClassEliminationStaysSoundUnderMutation) {
  SCOPED_TRACE(::testing::Message() << "fuzz seed=" << kSeed);
  Engine engine = OpenLoadedEngine();
  MutationFuzzer fuzz(&engine, kSeed + 1);

  // supplier / driver dangle: no predicate, no projection — the
  // optimizer may (and does) eliminate them when profitable.
  const std::vector<std::string> pool = {
      "{cargo.code} {} {cargo.desc = \"frozen food\"} {supplies} "
      "{supplier, cargo}",
      "{vehicle.vehicleNo} {} {vehicle.capacity >= 20} {drives} "
      "{driver, vehicle}",
      "{department.name} {} {department.securityClass >= 4} {belongsTo} "
      "{driver, department}",
  };

  Rng pick(kSeed ^ 0x5EED);
  const int kRounds = RoundsFromEnv(250);
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE(::testing::Message()
                 << "round=" << round << " seed=" << kSeed + 1);
    fuzz.MutateRound(/*allow_structure_changes=*/false);
    if (::testing::Test::HasFatalFailure()) return;
    fuzz.SettleBookkeeping();
    fuzz.CheckQuery(pool[pick.Index(pool.size())], round % 5 == 0);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GE(fuzz.operations(), 1000u);
}

}  // namespace
}  // namespace sqopt

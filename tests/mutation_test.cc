// Engine::Apply unit coverage: transactional visibility, pending-insert
// handles, incremental index/statistics maintenance on the
// copy-on-write clone, constraint validation with typed rejection, and
// atomicity of failed batches (nothing published, down to the snapshot
// version).
#include "api/mutation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/engine.h"
#include "exec/reference_executor.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

constexpr uint64_t kSeed = 20260729;
const DbSpec kSpec{"mutation_test", 40, 60};

const char* kRatingQuery =
    "{supplier.name} {} {supplier.rating >= 8} {} {supplier}";
const char* kSuppliesQuery =
    "{supplier.name, cargo.code} {} {} {supplies} {supplier, cargo}";

Engine OpenLoadedEngine(EngineOptions options = {}) {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment(),
                             std::move(options));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  Engine engine = std::move(opened).value();
  Status s = engine.Load(DataSource::Generated(kSpec, kSeed));
  EXPECT_TRUE(s.ok()) << s.ToString();
  return engine;
}

size_t RowCount(Engine& engine, const char* query) {
  auto out = engine.Execute(query);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? out->rows.rows.size() : 0;
}

TEST(ApplyTest, RequiresLoad) {
  ASSERT_OK_AND_ASSIGN(Engine engine,
                       Engine::Open(SchemaSource::Experiment(),
                                    ConstraintSource::Experiment()));
  MutationBatch batch;
  batch.Delete(0, 0);
  auto result = engine.Apply(batch);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ApplyTest, EmptyBatchIsNoOpCommit) {
  Engine engine = OpenLoadedEngine();
  EXPECT_EQ(engine.data_version(), 1u);
  ASSERT_OK_AND_ASSIGN(ApplyOutcome out, engine.Apply(MutationBatch{}));
  EXPECT_EQ(out.snapshot_version, 1u);
  EXPECT_EQ(engine.data_version(), 1u);
  EXPECT_EQ(engine.stats().mutation_batches_applied, 0u);
}

TEST(ApplyTest, InsertIsVisibleToSubsequentQueries) {
  Engine engine = OpenLoadedEngine();
  const size_t before = RowCount(engine, kRatingQuery);

  ClassId supplier = engine.schema().FindClass("supplier");
  ASSERT_OK_AND_ASSIGN(
      Object obj, MakeSegmentObject(engine.schema(), supplier,
                                    /*segment=*/0, /*ordinal=*/1));
  MutationBatch batch;
  batch.Insert(supplier, std::move(obj));
  ASSERT_OK_AND_ASSIGN(ApplyOutcome out, engine.Apply(batch));
  EXPECT_EQ(out.inserts, 1u);
  EXPECT_EQ(out.inserted_rows.size(), 1u);
  EXPECT_EQ(out.snapshot_version, 2u);
  EXPECT_EQ(engine.data_version(), 2u);

  // Segment-0 suppliers have rating >= 8, so the row count moves.
  EXPECT_EQ(RowCount(engine, kRatingQuery), before + 1);
  EXPECT_EQ(engine.stats().mutation_batches_applied, 1u);
  EXPECT_EQ(engine.stats().mutation_ops_applied, 1u);

  // Incremental statistics followed the commit.
  EXPECT_EQ(engine.database_stats()->ClassCardinality(supplier),
            kSpec.class_cardinality + 1);
}

TEST(ApplyTest, PendingInsertHandlesResolveAcrossOps) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  ClassId supplier = schema.FindClass("supplier");
  ClassId cargo = schema.FindClass("cargo");
  RelId supplies = schema.FindRelationship("supplies");
  const size_t pairs_before = RowCount(engine, kSuppliesQuery);

  MutationBatch batch;
  ASSERT_OK_AND_ASSIGN(Object s,
                       MakeSegmentObject(schema, supplier, 0, 7));
  ASSERT_OK_AND_ASSIGN(Object c, MakeSegmentObject(schema, cargo, 0, 7));
  int64_t hs = batch.Insert(supplier, std::move(s));
  int64_t hc = batch.Insert(cargo, std::move(c));
  EXPECT_LT(hs, 0);
  EXPECT_LT(hc, 0);
  batch.Link(supplies, hs, hc);

  ASSERT_OK_AND_ASSIGN(ApplyOutcome out, engine.Apply(batch));
  ASSERT_EQ(out.inserted_rows.size(), 2u);
  EXPECT_EQ(out.links, 1u);
  const int64_t supplier_row = out.inserted_rows[0];
  const int64_t cargo_row = out.inserted_rows[1];
  const std::vector<int64_t>& partners =
      engine.store()->Partners(supplies, supplier, supplier_row);
  ASSERT_EQ(partners.size(), 1u);
  EXPECT_EQ(partners[0], cargo_row);
  EXPECT_EQ(RowCount(engine, kSuppliesQuery), pairs_before + 1);
}

TEST(ApplyTest, UpdateMaintainsIndexOnTheClone) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  ClassId supplier = schema.FindClass("supplier");
  AttrRef name = schema.ResolveQualified("supplier.name").value();
  // A prepared handle pins the pre-commit snapshot (its creation-time
  // data pin), keeping the old store alive for the isolation check.
  ASSERT_OK_AND_ASSIGN(PreparedQuery pin, engine.Prepare(kRatingQuery));
  const ObjectStore* old_store = engine.store();

  MutationBatch batch;
  batch.Update(supplier, 0, name.attr_id, Value::String("acme"));
  ASSERT_OK_AND_ASSIGN(ApplyOutcome out, engine.Apply(batch));
  EXPECT_EQ(out.updates, 1u);

  // The indexed lookup on the NEW snapshot finds the renamed row...
  EXPECT_EQ(RowCount(engine,
                     "{supplier.region} {} {supplier.name = \"acme\"} "
                     "{} {supplier}"),
            1u);
  // ...while the old snapshot's index (shared structure cloned, not
  // mutated) still answers with the original name.
  const AttributeIndex* old_index = old_store->GetIndex(name);
  ASSERT_NE(old_index, nullptr);
  EXPECT_TRUE(old_index->Equal(Value::String("acme")).empty());
  EXPECT_EQ(old_index->Equal(Value::String("supplier-0")).size(), 1u);
}

TEST(ApplyTest, DeleteRemovesRowLinksAndIndexEntries) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  ClassId cargo = schema.FindClass("cargo");
  RelId supplies = schema.FindRelationship("supplies");
  AttrRef code = schema.ResolveQualified("cargo.code").value();
  const size_t pairs_before = RowCount(engine, kSuppliesQuery);
  const size_t cargo0_partners =
      engine.store()->Partners(supplies, cargo, 0).size();
  ASSERT_GT(cargo0_partners, 0u);  // diagonal link guarantees >= 1

  MutationBatch batch;
  batch.Delete(cargo, 0);
  ASSERT_OK_AND_ASSIGN(ApplyOutcome out, engine.Apply(batch));
  EXPECT_EQ(out.deletes, 1u);

  const ObjectStore& store = *engine.store();
  EXPECT_FALSE(store.IsLive(cargo, 0));
  EXPECT_EQ(store.NumLiveObjects(cargo), kSpec.class_cardinality - 1);
  EXPECT_EQ(store.NumObjects(cargo), kSpec.class_cardinality);  // slot stays
  EXPECT_TRUE(store.Partners(supplies, cargo, 0).empty());
  EXPECT_TRUE(
      store.GetIndex(code)->Equal(Value::String("cargo-0")).empty());
  EXPECT_EQ(RowCount(engine, kSuppliesQuery),
            pairs_before - cargo0_partners);

  // Planned and brute-force execution agree on the post-delete store.
  ASSERT_OK_AND_ASSIGN(QueryOutcome planned,
                       engine.Execute(kSuppliesQuery));
  ASSERT_OK_AND_ASSIGN(
      ResultSet reference,
      ExecuteReference(store, planned.original));
  EXPECT_TRUE(planned.rows.SameDistinctRows(reference));
}

TEST(ApplyTest, IntraClassViolationRejectedAtomically) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  ClassId supplier = schema.FindClass("supplier");
  AttrRef rating = schema.ResolveQualified("supplier.rating").value();
  AttrRef name = schema.ResolveQualified("supplier.name").value();
  const size_t before = RowCount(engine, kRatingQuery);
  const uint64_t version = engine.data_version();

  // Row 1 is segment 1 (region north): pushing its rating to 9 breaks
  // i1 (rating >= 8 -> region = west). The batch's earlier valid op
  // must be rolled back with it.
  MutationBatch batch;
  batch.Update(supplier, 0, name.attr_id, Value::String("acme"));
  batch.Update(supplier, 1, rating.attr_id, Value::Int(9));
  auto result = engine.Apply(batch);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConstraintViolation);
  EXPECT_NE(result.status().message().find("i1"), std::string::npos)
      << result.status().ToString();

  EXPECT_EQ(engine.data_version(), version);
  EXPECT_EQ(RowCount(engine, kRatingQuery), before);
  EXPECT_TRUE(engine.store()
                  ->GetIndex(name)
                  ->Equal(Value::String("acme"))
                  .empty());
  EXPECT_EQ(engine.stats().mutation_batches_applied, 0u);
  EXPECT_EQ(engine.stats().mutation_batches_rejected, 1u);
}

TEST(ApplyTest, InterClassViolationViaLinkRejected) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  RelId collects = schema.FindRelationship("collects");
  // cargo row 0 is "frozen food" (segment 0); vehicle row 1 is a
  // segment-1 "tanker". Linking them breaks x3
  // (cargo.desc = frozen food -> vehicle.desc = refrigerated truck).
  MutationBatch batch;
  batch.Link(collects, 0, 1);
  auto result = engine.Apply(batch);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConstraintViolation);
  const std::vector<int64_t>& partners =
      engine.store()->Partners(collects, schema.FindClass("cargo"), 0);
  EXPECT_EQ(std::count(partners.begin(), partners.end(), 1), 0);
}

TEST(ApplyTest, InterClassViolationViaUpdateRejected) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  ClassId vehicle = schema.FindClass("vehicle");
  AttrRef desc = schema.ResolveQualified("vehicle.desc").value();
  // Vehicle 0 is the refrigerated truck collecting frozen-food cargo 0
  // (diagonal link): repainting it violates x3 on that existing pair
  // (and i7, since its vclass is 4).
  MutationBatch batch;
  batch.Update(vehicle, 0, desc.attr_id, Value::String("tanker"));
  auto result = engine.Apply(batch);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(engine.store()->extent(vehicle).ValueAt(0, desc.attr_id),
            Value::String("refrigerated truck"));
}

TEST(ApplyTest, PerOpErrorIsAtomicAndNamesTheOp) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  ClassId supplier = schema.FindClass("supplier");
  ClassId cargo = schema.FindClass("cargo");
  AttrRef weight = schema.ResolveQualified("cargo.weight").value();
  const uint64_t version = engine.data_version();

  MutationBatch batch;
  ASSERT_OK_AND_ASSIGN(Object s,
                       MakeSegmentObject(schema, supplier, 0, 9));
  batch.Insert(supplier, std::move(s));
  batch.Update(cargo, 99999, weight.attr_id, Value::Int(20));
  auto result = engine.Apply(batch);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(result.status().message().find("mutation #1"),
            std::string::npos);
  EXPECT_EQ(engine.data_version(), version);
  EXPECT_EQ(engine.store()->NumLiveObjects(supplier),
            kSpec.class_cardinality);
}

TEST(ApplyTest, CrossClassHandleUseRejected) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  ClassId supplier = schema.FindClass("supplier");
  ClassId cargo = schema.FindClass("cargo");
  const uint64_t version = engine.data_version();

  // The handle names a supplier; using it as a cargo row must fail the
  // batch instead of touching whatever cargo row shares the id.
  MutationBatch batch;
  ASSERT_OK_AND_ASSIGN(Object s,
                       MakeSegmentObject(schema, supplier, 0, 11));
  int64_t handle = batch.Insert(supplier, std::move(s));
  batch.Delete(cargo, handle);
  auto result = engine.Apply(batch);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.data_version(), version);
  EXPECT_EQ(engine.store()->NumLiveObjects(cargo),
            kSpec.class_cardinality);
}

TEST(ApplyTest, LinkToDeletedRowRejected) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  ClassId driver = schema.FindClass("driver");
  RelId inspects = schema.FindRelationship("inspects");

  MutationBatch del;
  del.Delete(driver, 2);
  ASSERT_OK(engine.Apply(del).status());

  MutationBatch link;
  link.Link(inspects, 2, 2);
  auto result = engine.Apply(link);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ApplyTest, LinkUndoneByLaterUnlinkIsNotValidated) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  RelId collects = schema.FindRelationship("collects");
  // The (cargo 0, vehicle 1) cross-segment pair violates x3 — but the
  // batch removes it again, so the FINAL state is valid and the commit
  // must go through.
  MutationBatch batch;
  batch.Link(collects, 0, 1);
  batch.Unlink(collects, 0, 1);
  ASSERT_OK_AND_ASSIGN(ApplyOutcome out, engine.Apply(batch));
  EXPECT_EQ(out.links, 1u);
  EXPECT_EQ(out.unlinks, 1u);
  const std::vector<int64_t>& partners =
      engine.store()->Partners(collects, schema.FindClass("cargo"), 0);
  EXPECT_EQ(std::count(partners.begin(), partners.end(), 1), 0);
}

TEST(ApplyTest, RejectionCounterCountsOnlyConstraintRejections) {
  ASSERT_OK_AND_ASSIGN(Engine unloaded,
                       Engine::Open(SchemaSource::Experiment(),
                                    ConstraintSource::Experiment()));
  MutationBatch batch;
  batch.Delete(0, 0);
  EXPECT_FALSE(unloaded.Apply(batch).ok());
  EXPECT_EQ(unloaded.stats().mutation_batches_rejected, 0u);

  Engine engine = OpenLoadedEngine();
  MutationBatch bad_row;
  bad_row.Delete(0, 99999);  // malformed, not a constraint rejection
  EXPECT_EQ(engine.Apply(bad_row).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(engine.stats().mutation_batches_rejected, 0u);
}

TEST(ApplyTest, OutcomeReportsDriftAndChecks) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  ClassId supplier = schema.FindClass("supplier");
  AttrRef rating = schema.ResolveQualified("supplier.rating").value();

  MutationBatch batch;
  batch.Update(supplier, 0, rating.attr_id, Value::Int(10));
  ASSERT_OK_AND_ASSIGN(ApplyOutcome out, engine.Apply(batch));
  EXPECT_GT(out.constraint_checks, 0u);  // i1 at least, on the row
  // One row of 40 changed: drift 1/40, below the default threshold.
  EXPECT_DOUBLE_EQ(out.stats_drift, 1.0 / 40.0);
  EXPECT_FALSE(out.plan_cache_invalidated);
}

}  // namespace
}  // namespace sqopt

#include "sqo/optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "constraints/constraint_parser.h"
#include "query/query_parser.h"
#include "query/query_printer.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

using sqopt::testing::PaperExampleFixture;

class OptimizerTest : public PaperExampleFixture {
 protected:
  Query Q(const std::string& text) {
    auto q = ParseQuery(schema_, text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }
  bool HasSelective(const Query& q, const std::string& text) {
    auto p = ParsePredicate(schema_, text);
    EXPECT_TRUE(p.ok());
    return std::find(q.selective_predicates.begin(),
                     q.selective_predicates.end(),
                     *p) != q.selective_predicates.end();
  }
};

// Section 3.5 end-to-end: the paper's worked example. No cost model —
// the paper's formulation keeps both optional predicates and then drops
// p2 via class elimination.
TEST_F(OptimizerTest, ReproducesPaperExample) {
  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));
  SemanticOptimizer optimizer(&schema_, catalog_.get(),
                              /*cost_model=*/nullptr);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));

  // Transformation #1 (introduce cargo.desc via c1) and #2 (lower
  // supplier.name via c2) both happened.
  EXPECT_GE(result.report.num_firings, 2u);

  // Final tags: p1 imperative; p2, p3 optional.
  for (const FinalPredicate& fp : result.report.final_predicates) {
    std::string text = fp.predicate.ToString(schema_);
    if (text == "vehicle.desc = \"refrigerated truck\"") {
      EXPECT_EQ(fp.tag, PredicateTag::kImperative);
    } else if (text == "supplier.name = \"SFI\"" ||
               text == "cargo.desc = \"frozen food\"") {
      EXPECT_EQ(fp.tag, PredicateTag::kOptional) << text;
    }
  }

  // Supplier class eliminated, dropping p2.
  ClassId supplier = schema_.FindClass("supplier");
  EXPECT_FALSE(result.query.ReferencesClass(supplier));
  ASSERT_EQ(result.report.eliminated_classes.size(), 1u);
  EXPECT_EQ(result.report.eliminated_classes[0], supplier);

  // Transformed query: {vehicle.desc = RT, cargo.desc = FF} {collects}
  // {cargo, vehicle}.
  EXPECT_TRUE(HasSelective(result.query,
                           "vehicle.desc = \"refrigerated truck\""));
  EXPECT_TRUE(HasSelective(result.query, "cargo.desc = \"frozen food\""));
  EXPECT_FALSE(HasSelective(result.query, "supplier.name = \"SFI\""));
  EXPECT_EQ(result.query.classes.size(), 2u);
  EXPECT_EQ(result.query.relationships.size(), 1u);
  EXPECT_EQ(schema_.relationship(result.query.relationships[0]).name,
            "collects");
  EXPECT_FALSE(result.empty_result);
}

TEST_F(OptimizerTest, ExactModeAlsoReproducesPaperExample) {
  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));
  OptimizerOptions options;
  options.match_mode = MatchMode::kExact;
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr, options);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  EXPECT_TRUE(HasSelective(result.query, "cargo.desc = \"frozen food\""));
  EXPECT_EQ(result.query.classes.size(), 2u);
}

TEST_F(OptimizerTest, QueryWithoutRelevantConstraintsIsUntouched) {
  Query query = Q("{engine.capacity} {} {engine.capacity >= 100} {} "
                  "{engine}");
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  EXPECT_EQ(result.report.num_firings, 0u);
  EXPECT_EQ(result.query, query);
}

TEST_F(OptimizerTest, RequiresPrecompiledCatalog) {
  ConstraintCatalog fresh(&schema_);
  SemanticOptimizer optimizer(&schema_, &fresh, nullptr);
  Query query = Q("{engine.capacity} {} {} {} {engine}");
  auto result = optimizer.Optimize(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(OptimizerTest, RejectsInvalidQuery) {
  Query bogus;  // no classes
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  EXPECT_FALSE(optimizer.Optimize(bogus).ok());
}

// The antecedent-free constraints c3/c4 fire purely on class presence.
TEST_F(OptimizerTest, AntecedentFreeConstraintIntroducesJoinPredicate) {
  Query query =
      Q("{driver.name, vehicle.vehicle#} {} {} {drives} {driver, vehicle}");
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  // c3 introduces driver.licenseClass >= vehicle.class as optional.
  bool found = false;
  for (const FinalPredicate& fp : result.report.final_predicates) {
    if (fp.predicate.is_attr_attr()) {
      EXPECT_EQ(fp.tag, PredicateTag::kOptional);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(result.query.join_predicates.size(), 1u);
}

TEST_F(OptimizerTest, IntraClassConstraintYieldsRedundantNonIndexed) {
  // c4: -> manager.rank = "research staff member". rank is NOT indexed,
  // c4 is intra-class: Table 3.2 says the introduced predicate is
  // redundant, i.e. never added to the final query.
  Query query = Q("{manager.name} {} {} {} {manager}");
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  bool saw_rank = false;
  for (const FinalPredicate& fp : result.report.final_predicates) {
    if (fp.predicate.ToString(schema_) ==
        "manager.rank = \"research staff member\"") {
      saw_rank = true;
      EXPECT_EQ(fp.tag, PredicateTag::kRedundant);
      EXPECT_FALSE(fp.retained);
    }
  }
  EXPECT_TRUE(saw_rank);
  EXPECT_TRUE(result.query.selective_predicates.empty());
}

TEST_F(OptimizerTest, IgnoreIndexesPolicyMatchesPseudocode) {
  // Under kIgnoreIndexes an intra-class firing is always redundant even
  // if the consequent attribute is indexed. Add such a constraint.
  auto extra = ParseConstraint(
      schema_,
      "ci: cargo.quantity >= 100 -> cargo.desc = \"frozen food\"");
  ASSERT_TRUE(extra.ok());
  ASSERT_OK(catalog_->AddConstraint(std::move(*extra)));
  ASSERT_OK(catalog_->Precompile(stats_.get()));

  Query query =
      Q("{cargo.code} {} {cargo.quantity >= 100} {} {cargo}");

  OptimizerOptions aware;  // default kIndexAware
  SemanticOptimizer opt_aware(&schema_, catalog_.get(), nullptr, aware);
  ASSERT_OK_AND_ASSIGN(OptimizeResult aware_result,
                       opt_aware.Optimize(query));
  // cargo.desc is indexed -> introduced as optional, retained (no cost
  // model).
  EXPECT_TRUE(HasSelective(aware_result.query,
                           "cargo.desc = \"frozen food\""));

  OptimizerOptions ignore;
  ignore.tag_policy = TagPolicy::kIgnoreIndexes;
  SemanticOptimizer opt_ignore(&schema_, catalog_.get(), nullptr, ignore);
  ASSERT_OK_AND_ASSIGN(OptimizeResult ignore_result,
                       opt_ignore.Optimize(query));
  EXPECT_FALSE(HasSelective(ignore_result.query,
                            "cargo.desc = \"frozen food\""));
}

TEST_F(OptimizerTest, BudgetLimitsFirings) {
  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));
  OptimizerOptions options;
  options.transformation_budget = 1;
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr, options);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  EXPECT_EQ(result.report.num_firings, 1u);
  EXPECT_TRUE(result.report.budget_exhausted);
}

TEST_F(OptimizerTest, ClassEliminationCanBeDisabled) {
  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));
  OptimizerOptions options;
  options.enable_class_elimination = false;
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr, options);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  EXPECT_EQ(result.query.classes.size(), 3u);
  EXPECT_TRUE(result.report.eliminated_classes.empty());
  // p2 survives as an optional predicate.
  EXPECT_TRUE(HasSelective(result.query, "supplier.name = \"SFI\""));
}

TEST_F(OptimizerTest, ContradictionShortCircuits) {
  // Query asks for refrigerated trucks carrying fuel; c1 entails the
  // cargo is frozen food — unsatisfiable, so the answer is empty in any
  // consistent database state.
  Query query = Q(R"(
(SELECT {cargo.code} {}
        {vehicle.desc = "refrigerated truck", cargo.desc = "fuel"}
        {collects} {cargo, vehicle}))");
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  EXPECT_TRUE(result.empty_result);
  EXPECT_TRUE(result.report.empty_result);
}

TEST_F(OptimizerTest, ContradictionDetectionCanBeDisabled) {
  Query query = Q(R"(
(SELECT {cargo.code} {}
        {vehicle.desc = "refrigerated truck", cargo.desc = "fuel"}
        {collects} {cargo, vehicle}))");
  OptimizerOptions options;
  options.enable_contradiction_detection = false;
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr, options);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  EXPECT_FALSE(result.empty_result);
}

TEST_F(OptimizerTest, PriorityQueueWithBudgetPrefersIndexIntroduction) {
  // Two fireable constraints: c1 introduces cargo.desc (indexed) and a
  // fresh one introduces a NON-indexed predicate. With budget 1 the
  // priority queue must spend it on the index introduction.
  auto extra = ParseConstraint(
      schema_,
      "cn: vehicle.desc = \"refrigerated truck\" -> cargo.quantity >= 1");
  ASSERT_TRUE(extra.ok());
  ASSERT_OK(catalog_->AddConstraint(std::move(*extra)));
  ASSERT_OK(catalog_->Precompile(stats_.get()));

  Query query = Q(R"(
(SELECT {cargo.code} {}
        {vehicle.desc = "refrigerated truck"}
        {collects} {cargo, vehicle}))");

  OptimizerOptions options;
  options.queue = QueueDiscipline::kPriority;
  options.transformation_budget = 1;
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr, options);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  ASSERT_EQ(result.report.steps.size(), 1u);
  EXPECT_TRUE(result.report.steps[0].index_introduction);
  EXPECT_TRUE(HasSelective(result.query, "cargo.desc = \"frozen food\""));
  EXPECT_FALSE(HasSelective(result.query, "cargo.quantity >= 1"));
}

TEST_F(OptimizerTest, ReportRendersWithoutCrashing) {
  ASSERT_OK_AND_ASSIGN(Query query, Figure23SampleQuery(schema_));
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  std::string text = result.report.ToString(schema_);
  EXPECT_NE(text.find("relevant constraints"), std::string::npos);
  EXPECT_NE(text.find("fire"), std::string::npos);
}

}  // namespace
}  // namespace sqopt

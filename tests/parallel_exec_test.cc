// Morsel-driven parallel execution tests: the parallel executor against
// the brute-force reference evaluator AND against the sequential
// executor, across generated workloads at parallelism 1, 2, and 8. The
// contract under test is strict: identical row sets, identical row
// ORDER after the deterministic morsel merge, and identical work
// counters (the fan-out may only change the timing fields).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/engine.h"
#include "common/worker_pool.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/plan_builder.h"
#include "exec/reference_executor.h"
#include "query/query_parser.h"
#include "query/query_printer.h"
#include "tests/test_util.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

namespace sqopt {
namespace {

using sqopt::testing::ExperimentFixture;

std::vector<std::string> RowKeys(const ResultSet& rs) {
  std::vector<std::string> keys;
  keys.reserve(rs.rows.size());
  for (const auto& row : rs.rows) {
    std::string k;
    for (const Value& v : row) {
      k += v.ToString();
      k += '|';
    }
    keys.push_back(std::move(k));
  }
  return keys;
}

// ---------------------------------------------------------------------
// Cost-model gating.
// ---------------------------------------------------------------------

TEST(ChooseScanParallelismTest, SmallScansStaySequential) {
  CostModelParams params;
  EXPECT_EQ(ChooseScanParallelism(100, 8, params), 1);
  EXPECT_EQ(ChooseScanParallelism(0, 8, params), 1);
  EXPECT_EQ(ChooseScanParallelism(1 << 20, 1, params), 1);
  EXPECT_EQ(ChooseScanParallelism(1 << 20, 0, params), 1);
}

TEST(ChooseScanParallelismTest, LargeScansFanOutCappedByMorselCount) {
  CostModelParams params;
  EXPECT_EQ(ChooseScanParallelism(1 << 20, 8, params), 8);
  // 5000 candidates = 3 morsels of 2048 -> at most 3 useful workers.
  EXPECT_EQ(ChooseScanParallelism(5000, 8, params), 3);
}

TEST(ChooseScanParallelismTest, FanOutNeverCheaperOnTinyScans) {
  CostModelParams params;
  EXPECT_GE(ParallelScanCost(10, 4, params), ParallelScanCost(10, 1, params));
  EXPECT_LT(ParallelScanCost(1 << 20, 8, params),
            ParallelScanCost(1 << 20, 1, params));
}

// ---------------------------------------------------------------------
// Differential: parallel executor vs sequential vs reference, across
// the generated workload.
// ---------------------------------------------------------------------

class ParallelDifferentialTest
    : public ExperimentFixture,
      public ::testing::WithParamInterface<uint64_t> {};

TEST_P(ParallelDifferentialTest, MatchesSequentialAndReferenceExactly) {
  uint64_t seed = GetParam();
  // Small store: the reference evaluator is O(prod of cardinalities).
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"PDIFF", 24, 60}, seed));
  DatabaseStats stats = CollectStats(*store);

  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 3);
  QueryGenerator gen(&schema_, seed * 17 + 5);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 12));

  WorkerPool pool(8);
  for (const Query& query : queries) {
    ASSERT_OK_AND_ASSIGN(Plan plan, BuildPlan(schema_, stats, query));
    ExecutionMeter seq_meter;
    ASSERT_OK_AND_ASSIGN(ResultSet sequential,
                         ExecutePlan(*store, plan, &seq_meter));
    ASSERT_OK_AND_ASSIGN(ResultSet reference,
                         ExecuteReference(*store, query));
    ASSERT_TRUE(sequential.SameRows(reference))
        << PrintQuery(schema_, query);

    for (int parallelism : {1, 2, 8}) {
      Plan forced = plan;
      forced.parallelism = parallelism;
      forced.morsel_size = 2;  // many morsels even on a 24-row extent
      ExecutionMeter meter;
      ExecContext context;
      context.pool = &pool;
      ASSERT_OK_AND_ASSIGN(ResultSet parallel,
                           ExecutePlan(*store, forced, &meter, context));

      // Same rows, same ORDER: the morsel merge is deterministic.
      EXPECT_EQ(RowKeys(parallel), RowKeys(sequential))
          << "parallelism " << parallelism << ": "
          << PrintQuery(schema_, query);
      EXPECT_TRUE(parallel.SameRows(reference));

      // Work accounting is independent of the fan-out.
      EXPECT_EQ(meter.instances_scanned, seq_meter.instances_scanned);
      EXPECT_EQ(meter.index_probes, seq_meter.index_probes);
      EXPECT_EQ(meter.pointer_traversals, seq_meter.pointer_traversals);
      EXPECT_EQ(meter.predicate_evals, seq_meter.predicate_evals);
      EXPECT_EQ(meter.rows_out, seq_meter.rows_out);
      if (parallelism > 1 && meter.morsels > 1) {
        EXPECT_GE(meter.morsel_workers, 1u);
      } else if (parallelism == 1) {
        EXPECT_EQ(meter.morsels, 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferentialTest,
                         ::testing::Values(11, 22, 33, 44));

// An index-driven driving step (range scan) morselizes the index
// lookup result instead of the extent; order and counters must still
// match the sequential run.
TEST_F(ParallelDifferentialTest, IndexRangeScanMorselizes) {
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"PIDX", 32, 64}, 7));
  DatabaseStats stats = CollectStats(*store);
  ASSERT_OK_AND_ASSIGN(
      Query query,
      ParseQuery(schema_,
                 "{cargo.code, vehicle.vehicleNo} {} "
                 "{cargo.desc = \"parcels\"} {collects} {cargo, vehicle}"));
  ASSERT_OK_AND_ASSIGN(Plan plan, BuildPlan(schema_, stats, query));
  ASSERT_TRUE(plan.steps[0].index_predicate.has_value())
      << plan.ToString(schema_);

  ExecutionMeter seq_meter;
  ASSERT_OK_AND_ASSIGN(ResultSet sequential,
                       ExecutePlan(*store, plan, &seq_meter));
  Plan forced = plan;
  forced.parallelism = 4;
  forced.morsel_size = 2;
  WorkerPool pool(4);
  ExecutionMeter meter;
  ExecContext context;
  context.pool = &pool;
  ASSERT_OK_AND_ASSIGN(ResultSet parallel,
                       ExecutePlan(*store, forced, &meter, context));
  EXPECT_EQ(RowKeys(parallel), RowKeys(sequential));
  EXPECT_EQ(meter.index_probes, seq_meter.index_probes);
  EXPECT_EQ(meter.instances_scanned, seq_meter.instances_scanned);
  EXPECT_GT(meter.morsels, 1u);
}

// Without a pool the executor ignores plan.parallelism and runs
// sequentially — a plan is always safe to execute.
TEST_F(ParallelDifferentialTest, NoPoolFallsBackToSequential) {
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"PSEQ", 16, 40}, 3));
  DatabaseStats stats = CollectStats(*store);
  ASSERT_OK_AND_ASSIGN(
      Query query,
      ParseQuery(schema_, "{cargo.code} {} {} {} {cargo}"));
  ASSERT_OK_AND_ASSIGN(Plan plan, BuildPlan(schema_, stats, query));
  plan.parallelism = 8;
  plan.morsel_size = 2;
  ExecutionMeter meter;
  ASSERT_OK_AND_ASSIGN(ResultSet rows, ExecutePlan(*store, plan, &meter));
  EXPECT_EQ(rows.rows.size(), 16u);
  EXPECT_EQ(meter.morsels, 0u);
  EXPECT_EQ(meter.parallel_wall_micros, 0u);
}

// ---------------------------------------------------------------------
// Engine-level: the parallelism knob threads from ServeOptions through
// the planner into execution, and the outcome reports the fan-out.
// ---------------------------------------------------------------------

EngineOptions ParallelEngineOptions(int parallelism) {
  EngineOptions options;
  options.serve.parallelism = parallelism;
  options.serve.threads = 8;
  options.serve.morsel_size = 4;
  // Gate thresholds scaled down so the 64-row test store fans out.
  options.cost_params.morsel_rows = 4;
  options.cost_params.parallel_fanout_overhead = 0.0;
  return options;
}

class ParallelEngineTest : public ::testing::Test {
 protected:
  static Engine OpenLoaded(const EngineOptions& options) {
    auto engine = Engine::Open(SchemaSource::Experiment(),
                               ConstraintSource::Experiment(), options);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    Status s =
        engine->Load(DataSource::Generated(DbSpec{"PENG", 64, 96}, 9));
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::move(engine).value();
  }
};

TEST_F(ParallelEngineTest, KnobThreadsThroughToMorselExecution) {
  Engine parallel = OpenLoaded(ParallelEngineOptions(8));
  Engine sequential = OpenLoaded(EngineOptions{});

  // quantity is not indexed: the driving step is a full extent scan.
  const std::string text =
      "{cargo.code} {} {cargo.quantity >= 0} {} {cargo}";
  ASSERT_OK_AND_ASSIGN(QueryOutcome par, parallel.Execute(text));
  ASSERT_OK_AND_ASSIGN(QueryOutcome seq, sequential.Execute(text));

  EXPECT_EQ(RowKeys(par.rows), RowKeys(seq.rows));
  EXPECT_GT(par.meter.morsels, 1u) << "plan did not fan out";
  EXPECT_GE(par.meter.morsel_workers, 1u);
  EXPECT_EQ(seq.meter.morsels, 0u);

  // The prepared path replays the same parallel plan.
  ASSERT_OK_AND_ASSIGN(PreparedQuery stmt, parallel.Prepare(text));
  ASSERT_OK_AND_ASSIGN(QueryOutcome replay, stmt.Execute());
  EXPECT_EQ(RowKeys(replay.rows), RowKeys(seq.rows));
  EXPECT_GT(replay.meter.morsels, 1u);
}

TEST_F(ParallelEngineTest, SetServeOptionsSwitchesParallelism) {
  Engine engine = OpenLoaded(ParallelEngineOptions(8));
  const std::string text =
      "{cargo.code} {} {cargo.quantity >= 0} {} {cargo}";
  ASSERT_OK_AND_ASSIGN(QueryOutcome par, engine.Execute(text));
  EXPECT_GT(par.meter.morsels, 1u);

  ServeOptions serve = engine.options().serve;
  serve.parallelism = 1;
  engine.SetServeOptions(serve);
  ASSERT_OK_AND_ASSIGN(QueryOutcome seq, engine.Execute(text));
  EXPECT_EQ(seq.meter.morsels, 0u);  // re-planned sequential
  EXPECT_EQ(RowKeys(par.rows), RowKeys(seq.rows));
}

TEST_F(ParallelEngineTest, ConcurrentParallelExecutes) {
  Engine engine = OpenLoaded(ParallelEngineOptions(4));
  const std::string text =
      "{cargo.code, vehicle.vehicleNo} {} {cargo.quantity >= 0} "
      "{collects} {cargo, vehicle}";
  ASSERT_OK_AND_ASSIGN(QueryOutcome expected, engine.Execute(text));

  constexpr int kThreads = 4;
  constexpr int kReps = 8;
  std::vector<int> mismatches(kThreads, 0);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kReps; ++i) {
          auto out = engine.Execute(text);
          if (!out.ok() ||
              RowKeys(out->rows) != RowKeys(expected.rows)) {
            ++mismatches[t];
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

}  // namespace
}  // namespace sqopt

// Durability tests: snapshot round-trips, WAL replay, and the recovery
// edge cases the crash-recovery CI gauntlet leans on — empty WAL,
// WAL-only directories, checkpoint interrupted after its rename,
// duplicate replay idempotence, torn tails, and corrupted-checksum
// sections rejected with a typed kCorruption status.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "tests/test_util.h"
#include "workload/mutation_script.h"

namespace sqopt {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeed = 20260729;
const DbSpec kSpec{"persist_test", 40, 60};

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("sqopt_persist_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string snapshot_path() const {
    return (fs::path(dir_) / persist::kSnapshotFileName).string();
  }
  std::string wal_path() const {
    return (fs::path(dir_) / persist::kWalFileName).string();
  }

  Engine OpenLoaded(EngineOptions options = {}) {
    auto opened = Engine::Open(SchemaSource::Experiment(),
                               ConstraintSource::Experiment(), options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    Engine engine = std::move(opened).value();
    EXPECT_OK(engine.Load(DataSource::Generated(kSpec, kSeed)));
    return engine;
  }

  static std::vector<int64_t> BaseRows(const Engine& engine) {
    std::vector<int64_t> rows;
    for (const ObjectClass& oc : engine.schema().classes()) {
      rows.push_back(engine.store()->NumObjects(oc.id));
    }
    return rows;
  }

  // Applies the first `n` script batches to `engine` (scripts are
  // deterministic: equal seeds + equal fixtures => equal batches).
  static void ApplyScript(Engine* engine, int n) {
    MutationScript script(&engine->schema(), BaseRows(*engine), kSeed);
    for (int i = 0; i < n; ++i) {
      auto batch = script.Next();
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      auto out = engine->Apply(*batch);
      ASSERT_TRUE(out.ok()) << "batch " << i << ": "
                            << out.status().ToString();
    }
  }

  // A fresh in-memory engine carrying exactly the fixture + the first
  // `n` script batches — the oracle recovered engines diff against.
  Engine Oracle(int n) {
    Engine oracle = OpenLoaded();
    ApplyScript(&oracle, n);
    return oracle;
  }

  static void ExpectSameAnswers(const Engine& lhs, const Engine& rhs) {
    ASSERT_EQ(lhs.data_version(), rhs.data_version());
    for (const ObjectClass& oc : lhs.schema().classes()) {
      EXPECT_EQ(lhs.store()->NumLiveObjects(oc.id),
                rhs.store()->NumLiveObjects(oc.id))
          << "class " << oc.name;
    }
    for (const Relationship& rel : lhs.schema().relationships()) {
      EXPECT_EQ(lhs.store()->NumPairs(rel.id),
                rhs.store()->NumPairs(rel.id))
          << "relationship " << rel.name;
    }
    for (const std::string& text : MutationScript::QueryPool()) {
      auto a = lhs.Execute(text);
      auto b = rhs.Execute(text);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_TRUE(a->rows.SameDistinctRows(b->rows))
          << "engines disagree on: " << text;
    }
  }

  // Flips one byte of `path` at `offset`.
  static void FlipByte(const std::string& path, int64_t offset) {
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(offset);
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5A);
    f.seekp(offset);
    f.write(&c, 1);
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static void Spit(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

TEST_F(PersistTest, SaveThenOpenRoundtripsEverything) {
  Engine original = OpenLoaded();
  ASSERT_OK(original.Save(dir_));
  EXPECT_EQ(original.persist_dir(), dir_);

  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));
  EXPECT_EQ(reopened.persist_dir(), dir_);
  EXPECT_EQ(reopened.data_version(), 1u);
  EXPECT_EQ(reopened.stats().wal_records_replayed, 0u);

  // The precompiled catalog came back whole: same base set, same
  // derived rules, no closure recomputation on open.
  EXPECT_TRUE(reopened.catalog().precompiled());
  EXPECT_EQ(reopened.catalog().num_base(), original.catalog().num_base());
  EXPECT_EQ(reopened.catalog().num_derived(),
            original.catalog().num_derived());
  EXPECT_GT(reopened.catalog().num_derived(), 0u);

  // Statistics were deserialized, not re-collected: spot-check one
  // numeric attribute's stats object end to end.
  const Schema& schema = reopened.schema();
  AttrRef weight =
      schema.FindAttribute(schema.FindClass("cargo"), "weight");
  const AttrStatsData* a = original.database_stats()->AttrStatsFor(weight);
  const AttrStatsData* b = reopened.database_stats()->AttrStatsFor(weight);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->distinct_values, b->distinct_values);
  EXPECT_EQ(a->min, b->min);
  EXPECT_EQ(a->max, b->max);
  EXPECT_EQ(a->histogram.total(), b->histogram.total());
  EXPECT_EQ(a->histogram.num_buckets(), b->histogram.num_buckets());

  ExpectSameAnswers(original, reopened);
}

TEST_F(PersistTest, WalReplayRestoresCommittedBatches) {
  Engine original = OpenLoaded();
  ASSERT_OK(original.Save(dir_));
  ApplyScript(&original, 7);
  EXPECT_EQ(original.data_version(), 8u);

  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));
  EXPECT_EQ(reopened.stats().wal_records_replayed, 7u);
  ExpectSameAnswers(original, reopened);

  // The reopened engine is durable in turn.
  ASSERT_OK(reopened.Checkpoint());
  ASSERT_OK_AND_ASSIGN(Engine again, Engine::Open(dir_));
  EXPECT_EQ(again.data_version(), 8u);
  EXPECT_EQ(again.stats().wal_records_replayed, 0u);
}

TEST_F(PersistTest, CheckpointFoldsLogIntoSnapshot) {
  Engine engine = OpenLoaded();
  ASSERT_OK(engine.Save(dir_));
  ApplyScript(&engine, 5);
  EXPECT_GT(fs::file_size(wal_path()), persist::kWalHeaderBytes);

  ASSERT_OK(engine.Checkpoint());
  EXPECT_EQ(engine.stats().checkpoints, 1u);
  // The log shrank back to its header; the snapshot carries version 6.
  EXPECT_EQ(fs::file_size(wal_path()), persist::kWalHeaderBytes);

  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));
  EXPECT_EQ(reopened.data_version(), 6u);
  EXPECT_EQ(reopened.stats().wal_records_replayed, 0u);
  ExpectSameAnswers(engine, reopened);
}

TEST_F(PersistTest, EmptyAndMissingWalAreEquivalent) {
  Engine engine = OpenLoaded();
  ASSERT_OK(engine.Save(dir_));

  // Header-only WAL (what Save leaves behind).
  ASSERT_OK_AND_ASSIGN(Engine a, Engine::Open(dir_));
  EXPECT_EQ(a.data_version(), 1u);

  // Missing WAL: same outcome, and the open recreates the file so the
  // engine can append.
  fs::remove(wal_path());
  ASSERT_OK_AND_ASSIGN(Engine b, Engine::Open(dir_));
  EXPECT_EQ(b.data_version(), 1u);
  EXPECT_TRUE(fs::exists(wal_path()));
  ApplyScript(&b, 1);
  ASSERT_OK_AND_ASSIGN(Engine c, Engine::Open(dir_));
  EXPECT_EQ(c.data_version(), 2u);
}

TEST_F(PersistTest, WalOnlyDirectoryIsATypedError) {
  Engine engine = OpenLoaded();
  ASSERT_OK(engine.Save(dir_));
  ApplyScript(&engine, 2);
  fs::remove(snapshot_path());

  auto reopened = Engine::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  // The WAL alone cannot rebuild a schema; the caller gets a clean
  // typed status, not a crash or a half-open engine.
  EXPECT_EQ(reopened.status().code(), StatusCode::kNotFound)
      << reopened.status().ToString();
}

TEST_F(PersistTest, TornWalTailRecoversThePrefix) {
  Engine original = OpenLoaded();
  ASSERT_OK(original.Save(dir_));
  ApplyScript(&original, 3);

  // Cut the last record short: recovery must land on exactly the first
  // two commits and the writer must truncate the torn bytes away.
  const auto full = fs::file_size(wal_path());
  fs::resize_file(wal_path(), full - 3);
  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));
  EXPECT_EQ(reopened.data_version(), 3u);
  EXPECT_EQ(reopened.stats().wal_records_replayed, 2u);
  ExpectSameAnswers(Oracle(2), reopened);

  // Appends after a torn-tail recovery start on a clean frame.
  MutationScript script(&reopened.schema(), BaseRows(reopened), kSeed ^ 7);
  ASSERT_OK_AND_ASSIGN(MutationBatch batch, script.Next());
  ASSERT_OK_AND_ASSIGN(ApplyOutcome out, reopened.Apply(batch));
  EXPECT_EQ(out.snapshot_version, 4u);
  ASSERT_OK_AND_ASSIGN(Engine again, Engine::Open(dir_));
  EXPECT_EQ(again.data_version(), 4u);
}

TEST_F(PersistTest, CheckpointInterruptedAfterRenameIsIdempotent) {
  Engine engine = OpenLoaded();
  ASSERT_OK(engine.Save(dir_));
  ApplyScript(&engine, 2);

  // Simulate a kill between the checkpoint's rename and its truncate:
  // take the pre-checkpoint WAL bytes, checkpoint, then put the stale
  // records back. The directory now holds a version-3 snapshot AND a
  // log whose records are all <= 3.
  const std::string stale_wal = Slurp(wal_path());
  ASSERT_OK(engine.Checkpoint());
  Spit(wal_path(), stale_wal);

  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));
  // Duplicate replay idempotence: both records were skipped by
  // version, not re-applied (re-applying would double the inserts).
  EXPECT_EQ(reopened.data_version(), 3u);
  EXPECT_EQ(reopened.stats().wal_records_replayed, 0u);
  ExpectSameAnswers(Oracle(2), reopened);
}

TEST_F(PersistTest, CorruptedSnapshotSectionIsRejectedAsCorruption) {
  Engine engine = OpenLoaded();
  ASSERT_OK(engine.Save(dir_));
  // Offset 100 sits inside the first section's payload (the header is
  // 24 bytes, the section frame 16): the flip must trip that section's
  // CRC, never be silently absorbed.
  FlipByte(snapshot_path(), 100);

  auto reopened = Engine::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption)
      << reopened.status().ToString();
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST_F(PersistTest, ColumnarExtentsRoundTripBitIdentical) {
  // Inserts, attribute overwrites, and deletes from the mutation
  // script, then save/recover: every slot of every row slot (live and
  // tombstoned alike) must read back exactly, across typed columns,
  // demoted generic chunks, and partial tail segments.
  Engine original = OpenLoaded();
  ApplyScript(&original, 6);
  ASSERT_OK(original.Save(dir_));
  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));

  const Schema& schema = original.schema();
  for (const ObjectClass& oc : schema.classes()) {
    const Extent& a = original.store()->extent(oc.id);
    const Extent& b = reopened.store()->extent(oc.id);
    ASSERT_EQ(a.size(), b.size()) << "class " << oc.name;
    ASSERT_EQ(a.live_count(), b.live_count()) << "class " << oc.name;
    for (int64_t row = 0; row < a.size(); ++row) {
      ASSERT_EQ(a.IsLive(row), b.IsLive(row))
          << "class " << oc.name << " row " << row;
      for (AttrId attr_id : schema.LayoutOf(oc.id)) {
        ASSERT_EQ(a.ValueAt(row, attr_id), b.ValueAt(row, attr_id))
            << "class " << oc.name << " row " << row << " attr "
            << attr_id;
      }
    }
  }
}

TEST_F(PersistTest, OldSnapshotFormatIsRejectedAsUnsupportedVersion) {
  Engine engine = OpenLoaded();
  ASSERT_OK(engine.Save(dir_));
  // Rewrite the u32 format-version field (bytes 8..12, right after the
  // 8-byte magic) to the pre-columnar version 1. The header carries no
  // checksum, so this is exactly what a cold open of an old snapshot
  // looks like — and it must fail typed, not as corruption and never
  // as a misread.
  std::string bytes = Slurp(snapshot_path());
  ASSERT_GT(bytes.size(), 12u);
  bytes[8] = 1;
  bytes[9] = bytes[10] = bytes[11] = 0;
  Spit(snapshot_path(), bytes);

  auto reopened = Engine::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kUnsupportedVersion)
      << reopened.status().ToString();
  EXPECT_NE(reopened.status().message().find("version 1"),
            std::string::npos)
      << reopened.status().ToString();
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupportedVersion),
               "UnsupportedVersion");
}

TEST_F(PersistTest, CorruptedWalRecordEndsTheValidPrefix) {
  Engine engine = OpenLoaded();
  ASSERT_OK(engine.Save(dir_));
  ApplyScript(&engine, 3);

  // Damage the FIRST record's payload: WAL semantics cannot tell torn
  // from corrupt, so the valid prefix ends there and recovery comes
  // back at the snapshot state.
  FlipByte(wal_path(),
           static_cast<int64_t>(persist::kWalHeaderBytes) + 16);
  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));
  EXPECT_EQ(reopened.data_version(), 1u);
  ExpectSameAnswers(Oracle(0), reopened);
}

TEST_F(PersistTest, TruncatedWalHeaderRecoversAsEmptyLog) {
  // A kill during the log's very creation leaves a half-written
  // header: no record can exist yet, so recovery treats the log as
  // empty and the writer rebuilds the header in place.
  Engine engine = OpenLoaded();
  ASSERT_OK(engine.Save(dir_));
  fs::resize_file(wal_path(), 5);

  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));
  EXPECT_EQ(reopened.data_version(), 1u);
  ApplyScript(&reopened, 1);
  ASSERT_OK_AND_ASSIGN(Engine again, Engine::Open(dir_));
  EXPECT_EQ(again.data_version(), 2u);
}

TEST_F(PersistTest, FsyncOffStillCommitsDurably) {
  EngineOptions options;
  options.serve.durability.fsync = false;
  Engine engine = OpenLoaded(options);
  ASSERT_OK(engine.Save(dir_));
  ApplyScript(&engine, 4);

  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));
  EXPECT_EQ(reopened.data_version(), 5u);
  ExpectSameAnswers(engine, reopened);
}

TEST_F(PersistTest, ReloadDetachesThePersistenceDirectory) {
  Engine engine = OpenLoaded();
  ASSERT_OK(engine.Save(dir_));
  const auto wal_size_before = fs::file_size(wal_path());

  ASSERT_OK(engine.Load(DataSource::Generated(kSpec, kSeed + 1)));
  EXPECT_EQ(engine.persist_dir(), "");
  ApplyScript(&engine, 1);
  // The detached engine no longer logs: the on-disk state still
  // describes the ORIGINAL data.
  EXPECT_EQ(fs::file_size(wal_path()), wal_size_before);
  EXPECT_EQ(engine.Checkpoint().code(), StatusCode::kFailedPrecondition);

  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));
  EXPECT_EQ(reopened.data_version(), 1u);
}

TEST_F(PersistTest, SaveOverAForeignDirectoryReplacesItsLineage) {
  // Directory holds engine X's snapshot plus WAL records v2..v3. A
  // different engine Y saving into the same directory must clear that
  // log BEFORE its snapshot lands (a crash between the two steps may
  // leave X's clean snapshot, never Y's snapshot with X's log — whose
  // gap-free versions would replay X's batches onto Y's data).
  Engine x = OpenLoaded();
  ASSERT_OK(x.Save(dir_));
  ApplyScript(&x, 2);
  EXPECT_GT(fs::file_size(wal_path()), persist::kWalHeaderBytes);

  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  ASSERT_TRUE(opened.ok());
  Engine y = std::move(opened).value();
  ASSERT_OK(y.Load(DataSource::Generated(kSpec, kSeed + 17)));
  ASSERT_OK(y.Save(dir_));
  EXPECT_EQ(fs::file_size(wal_path()), persist::kWalHeaderBytes);

  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));
  EXPECT_EQ(reopened.data_version(), 1u);
  EXPECT_EQ(reopened.stats().wal_records_replayed, 0u);
  ExpectSameAnswers(y, reopened);
}

TEST_F(PersistTest, SaveRequiresLoadedData) {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->Save(dir_).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(opened->Checkpoint().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PersistTest, PreparedHandlesObserveReplayedCommits) {
  // A prepared statement on a reopened engine follows later commits,
  // exactly as on an in-memory engine (same lineage contract).
  Engine engine = OpenLoaded();
  ASSERT_OK(engine.Save(dir_));
  ApplyScript(&engine, 4);
  ASSERT_OK_AND_ASSIGN(Engine reopened, Engine::Open(dir_));
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery prepared,
      reopened.Prepare(
          "{supplier.name} {} {supplier.rating >= 8} {} {supplier}"));
  ASSERT_OK_AND_ASSIGN(QueryOutcome before, prepared.Execute());

  MutationScript script(&reopened.schema(), BaseRows(reopened), kSeed ^ 99);
  ASSERT_OK_AND_ASSIGN(MutationBatch batch, script.Next());
  ASSERT_OK_AND_ASSIGN(ApplyOutcome out, reopened.Apply(batch));
  EXPECT_EQ(out.inserts, 5u);  // a world insert adds one supplier
  ASSERT_OK_AND_ASSIGN(QueryOutcome after, prepared.Execute());
  // The new world's supplier matches the predicate only when its
  // segment is 0; either way the handle must see the CURRENT snapshot,
  // so row counts can only grow or stay.
  EXPECT_GE(after.rows.rows.size(), before.rows.rows.size());
}

}  // namespace
}  // namespace sqopt

// Tests for the shared plan cache: transparent Execute hits, canonical
// keying across textual variants, LRU eviction, counters in
// QueryOutcome, and — most load-bearing — invalidation on data
// reloads: a reload between two identical Executes must miss the cache
// and never serve rows from the dropped store.
#include "api/plan_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"
#include "api/engine_impl.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

constexpr uint64_t kSeed = 20260728;
const DbSpec kSpec{"plan_cache_test", 104, 154};

const char* kJoinQuery =
    "{cargo.code} {} {cargo.desc = \"frozen food\", "
    "supplier.region = \"west\"} {supplies} {supplier, cargo}";
const char* kSingleClassQuery =
    "{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}";
// kSingleClassQuery with gratuitous whitespace: same canonical key.
const char* kSingleClassQueryVariant =
    "{ cargo.code }  {} { cargo.desc = \"frozen food\" } {}  { cargo }";
const char* kContradictionQuery =
    "{cargo.code} {} {vehicle.desc = \"refrigerated truck\", "
    "cargo.desc = \"fuel\"} {collects} {cargo, vehicle}";

Engine OpenLoadedEngine(EngineOptions options = {}) {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment(),
                             std::move(options));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  Engine engine = std::move(opened).value();
  Status s = engine.Load(DataSource::Generated(kSpec, kSeed));
  EXPECT_TRUE(s.ok()) << s.ToString();
  return engine;
}

// --- Direct PlanCache unit coverage. ---

std::shared_ptr<const detail::PreparedState> MakeEntry() {
  auto entry = std::make_shared<detail::PreparedState>();
  entry->empty_result = true;  // executable without data
  return entry;
}

TEST(PlanCacheUnitTest, LookupInsertAndCounters) {
  detail::PlanCache cache(/*capacity=*/16);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", MakeEntry(), cache.epoch());
  EXPECT_NE(cache.Lookup("a"), nullptr);

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.capacity, 16u);
  EXPECT_GE(stats.shards, 1u);
}

TEST(PlanCacheUnitTest, StaleEpochInsertIsDropped) {
  detail::PlanCache cache(/*capacity=*/16);
  uint64_t epoch = cache.epoch();
  cache.Invalidate();  // a "reload" between lookup and insert
  cache.Insert("a", MakeEntry(), epoch);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(PlanCacheUnitTest, EvictsLeastRecentlyUsed) {
  // Capacity 1 => one shard, one slot: the second insert evicts the
  // first.
  detail::PlanCache cache(/*capacity=*/1);
  cache.Insert("a", MakeEntry(), cache.epoch());
  cache.Insert("b", MakeEntry(), cache.epoch());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("b"), nullptr);
}

TEST(PlanCacheUnitTest, DisabledCacheIsInert) {
  detail::PlanCache cache(/*capacity=*/0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert("a", MakeEntry(), cache.epoch());
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  EXPECT_EQ(stats.capacity, 0u);
}

// --- Engine-integrated behavior. ---

TEST(PlanCacheEngineTest, SecondExecuteHitsTheCache) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(QueryOutcome first, engine.Execute(kJoinQuery));
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_EQ(first.plan_cache.misses, 1u);

  ASSERT_OK_AND_ASSIGN(QueryOutcome second, engine.Execute(kJoinQuery));
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(second.plan_cache.hits, 1u);
  EXPECT_TRUE(second.rows.SameRows(first.rows));
  EXPECT_EQ(second.meter.rows_out, first.meter.rows_out);
  EXPECT_EQ(engine.plan_cache_stats().entries, 1u);
}

TEST(PlanCacheEngineTest, RawTextRepeatSkipsReparsing) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK(engine.Execute(kJoinQuery).status());
  uint64_t parses_before = engine.stats().queries_parsed;
  ASSERT_OK_AND_ASSIGN(QueryOutcome repeat, engine.Execute(kJoinQuery));
  EXPECT_TRUE(repeat.plan_cache_hit);
  // The exact-text fast path serves the repeat without re-parsing.
  EXPECT_EQ(engine.stats().queries_parsed, parses_before);
  EXPECT_EQ(engine.plan_cache_stats().aliases, 1u);
}

TEST(PlanCacheEngineTest, CanonicalKeyCoalescesTextualVariants) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(QueryOutcome first,
                       engine.Execute(kSingleClassQuery));
  ASSERT_OK_AND_ASSIGN(QueryOutcome variant,
                       engine.Execute(kSingleClassQueryVariant));
  EXPECT_TRUE(variant.plan_cache_hit);
  EXPECT_TRUE(variant.rows.SameRows(first.rows));
  EXPECT_EQ(engine.plan_cache_stats().entries, 1u);
}

TEST(PlanCacheEngineTest, PrepareAndExecuteShareEntries) {
  Engine engine = OpenLoadedEngine();
  // Execute seeds the cache; Prepare hits it (no second miss) ...
  ASSERT_OK(engine.Execute(kJoinQuery).status());
  ASSERT_OK_AND_ASSIGN(PreparedQuery prepared, engine.Prepare(kJoinQuery));
  EXPECT_EQ(engine.plan_cache_stats().misses, 1u);
  EXPECT_EQ(engine.plan_cache_stats().hits, 1u);
  ASSERT_OK(prepared.Execute().status());
  // ... and a Prepare of a fresh query seeds the cache for Execute.
  ASSERT_OK(engine.Prepare(kSingleClassQuery).status());
  ASSERT_OK_AND_ASSIGN(QueryOutcome out, engine.Execute(kSingleClassQuery));
  EXPECT_TRUE(out.plan_cache_hit);
}

TEST(PlanCacheEngineTest, ContradictionsAreCachedToo) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(QueryOutcome first,
                       engine.Execute(kContradictionQuery));
  EXPECT_TRUE(first.answered_without_database);
  ASSERT_OK_AND_ASSIGN(QueryOutcome second,
                       engine.Execute(kContradictionQuery));
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_TRUE(second.answered_without_database);
  EXPECT_EQ(second.meter.instances_scanned, 0u);
  EXPECT_EQ(engine.stats().contradictions, 2u);
}

TEST(PlanCacheEngineTest, CapacityZeroDisablesCaching) {
  EngineOptions options;
  options.serve.cache_capacity = 0;
  Engine engine = OpenLoadedEngine(options);
  ASSERT_OK(engine.Execute(kJoinQuery).status());
  ASSERT_OK_AND_ASSIGN(QueryOutcome second, engine.Execute(kJoinQuery));
  EXPECT_FALSE(second.plan_cache_hit);
  PlanCacheStats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.entries, 0u);
}

TEST(PlanCacheEngineTest, EvictionUnderTinyCapacity) {
  EngineOptions options;
  options.serve.cache_capacity = 1;
  Engine engine = OpenLoadedEngine(options);
  ASSERT_OK(engine.Execute(kJoinQuery).status());
  ASSERT_OK(engine.Execute(kSingleClassQuery).status());
  ASSERT_OK(engine.Execute(kContradictionQuery).status());
  PlanCacheStats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.evictions, 2u);
}

// The satellite requirement: a reload between two identical Executes
// must miss the cache and serve rows from the NEW store, never the
// dropped one.
TEST(PlanCacheEngineTest, ReloadInvalidatesAndNeverServesDroppedStore) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(QueryOutcome before,
                       engine.Execute(kSingleClassQuery));
  EXPECT_FALSE(before.plan_cache_hit);

  // Reload with a differently-sized database (different row counts for
  // the same query).
  ASSERT_OK(engine.Load(
      DataSource::Generated(DbSpec{"other", 52, 77}, kSeed + 1)));
  EXPECT_EQ(engine.plan_cache_stats().entries, 0u);
  // Two invalidations: the initial Load and this reload.
  EXPECT_EQ(engine.plan_cache_stats().invalidations, 2u);

  ASSERT_OK_AND_ASSIGN(QueryOutcome after,
                       engine.Execute(kSingleClassQuery));
  EXPECT_FALSE(after.plan_cache_hit) << "reload must force a cache miss";
  EXPECT_NE(after.rows.rows.size(), before.rows.rows.size())
      << "rows must come from the new store";

  // What the fresh miss cached is the NEW store's plan.
  ASSERT_OK_AND_ASSIGN(QueryOutcome warm, engine.Execute(kSingleClassQuery));
  EXPECT_TRUE(warm.plan_cache_hit);
  EXPECT_TRUE(warm.rows.SameRows(after.rows));
}

// --- Write-path epoching: Apply invalidates only when the commit's
// statistics drift crosses ServeOptions::replan_threshold, and cached
// plans that survive must serve the NEW snapshot's rows. ---

const char* kRatingQuery =
    "{supplier.name} {} {supplier.rating >= 8} {} {supplier}";

TEST(PlanCacheEngineTest, ApplyBelowThresholdKeepsCacheAndRebindsData) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  ClassId supplier = schema.FindClass("supplier");
  AttrRef rating = schema.ResolveQualified("supplier.rating").value();

  ASSERT_OK_AND_ASSIGN(QueryOutcome first, engine.Execute(kRatingQuery));
  EXPECT_FALSE(first.plan_cache_hit);
  const uint64_t invalidations_before =
      engine.plan_cache_stats().invalidations;

  // One update on a 104-row class: drift 1/104, far below 0.15.
  // (Dropping row 0's rating below 8 falsifies i1's antecedent, so no
  // constraint fires — and the query's result shrinks by one row.)
  MutationBatch batch;
  batch.Update(supplier, 0, rating.attr_id, Value::Int(7));
  ASSERT_OK_AND_ASSIGN(ApplyOutcome applied, engine.Apply(batch));
  EXPECT_FALSE(applied.plan_cache_invalidated);
  EXPECT_LT(applied.stats_drift,
            engine.options().serve.replan_threshold);

  ASSERT_OK_AND_ASSIGN(QueryOutcome second, engine.Execute(kRatingQuery));
  EXPECT_TRUE(second.plan_cache_hit)
      << "below-threshold Apply must not invalidate";
  EXPECT_EQ(engine.plan_cache_stats().invalidations,
            invalidations_before);
  // The surviving cached plan executes against the NEW snapshot.
  EXPECT_EQ(second.rows.rows.size(), first.rows.rows.size() - 1);
}

TEST(PlanCacheEngineTest, ApplyAboveThresholdInvalidates) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  ClassId supplier = schema.FindClass("supplier");

  ASSERT_OK_AND_ASSIGN(QueryOutcome first, engine.Execute(kRatingQuery));
  const uint64_t hits_before = engine.plan_cache_stats().hits;
  const uint64_t invalidations_before =
      engine.plan_cache_stats().invalidations;

  // 20 inserts on a 104-row class: drift ~0.19 >= 0.15.
  MutationBatch batch;
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(Object obj,
                         MakeSegmentObject(schema, supplier, 0, 100 + i));
    batch.Insert(supplier, std::move(obj));
  }
  ASSERT_OK_AND_ASSIGN(ApplyOutcome applied, engine.Apply(batch));
  EXPECT_TRUE(applied.plan_cache_invalidated);
  EXPECT_GE(applied.stats_drift, engine.options().serve.replan_threshold);
  EXPECT_EQ(engine.plan_cache_stats().invalidations,
            invalidations_before + 1);

  ASSERT_OK_AND_ASSIGN(QueryOutcome second, engine.Execute(kRatingQuery));
  EXPECT_FALSE(second.plan_cache_hit)
      << "above-threshold Apply must force a re-plan";
  EXPECT_EQ(engine.plan_cache_stats().hits, hits_before);
  // Segment-0 suppliers have rating >= 8: all 20 inserts are visible.
  EXPECT_EQ(second.rows.rows.size(), first.rows.rows.size() + 20);
}

TEST(PlanCacheEngineTest, ReplanThresholdKnobIsRespected) {
  // Threshold 0: every commit (any drift >= 0) re-plans.
  EngineOptions eager;
  eager.serve.replan_threshold = 0.0;
  Engine engine = OpenLoadedEngine(eager);
  const Schema& schema = engine.schema();
  ClassId supplier = schema.FindClass("supplier");
  AttrRef rating = schema.ResolveQualified("supplier.rating").value();

  ASSERT_OK(engine.Execute(kRatingQuery).status());
  MutationBatch one;
  one.Update(supplier, 0, rating.attr_id, Value::Int(9));
  ASSERT_OK_AND_ASSIGN(ApplyOutcome applied, engine.Apply(one));
  EXPECT_TRUE(applied.plan_cache_invalidated);
  ASSERT_OK_AND_ASSIGN(QueryOutcome out, engine.Execute(kRatingQuery));
  EXPECT_FALSE(out.plan_cache_hit);

  // An effectively-infinite threshold keeps the cache across a commit
  // that rewrites a fifth of the class.
  EngineOptions lazy;
  lazy.serve.replan_threshold = 1e9;
  Engine relaxed = OpenLoadedEngine(lazy);
  ASSERT_OK(relaxed.Execute(kRatingQuery).status());
  MutationBatch many;
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(Object obj,
                         MakeSegmentObject(schema, supplier, 0, 200 + i));
    many.Insert(supplier, std::move(obj));
  }
  ASSERT_OK_AND_ASSIGN(ApplyOutcome big, relaxed.Apply(many));
  EXPECT_FALSE(big.plan_cache_invalidated);
  ASSERT_OK_AND_ASSIGN(QueryOutcome warm, relaxed.Execute(kRatingQuery));
  EXPECT_TRUE(warm.plan_cache_hit);
}

TEST(PlanCacheEngineTest, CatalogAndOptimizerChangesInvalidate) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK(engine.Execute(kJoinQuery).status());
  EXPECT_EQ(engine.plan_cache_stats().entries, 1u);

  // New constraint => retrieval/transformation may change => flush.
  ASSERT_OK(engine.AddConstraint(
      "extra: cargo.weight <= 40 -> cargo.quantity <= 499"));
  EXPECT_EQ(engine.plan_cache_stats().entries, 0u);

  ASSERT_OK(engine.Execute(kJoinQuery).status());
  EXPECT_EQ(engine.plan_cache_stats().entries, 1u);

  // New optimizer knobs => cached plans are stale => flush.
  engine.SetOptimizerOptions(OptimizerOptions{});
  EXPECT_EQ(engine.plan_cache_stats().entries, 0u);
}

TEST(PlanCacheEngineTest, AnalyzeAndUnoptimizedBypassTheCache) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK(engine.Analyze(kJoinQuery).status());
  ASSERT_OK(engine.ExecuteUnoptimized(kJoinQuery).status());
  PlanCacheStats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.entries, 0u);
}

}  // namespace
}  // namespace sqopt

#include "expr/predicate.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, BuildExperimentSchema());
  }
  Schema schema_;
};

TEST_F(PredicateTest, ParseAttrConst) {
  ASSERT_OK_AND_ASSIGN(
      Predicate p, ParsePredicate(schema_, "cargo.desc = \"frozen food\""));
  EXPECT_TRUE(p.is_attr_const());
  EXPECT_EQ(p.op(), CompareOp::kEq);
  EXPECT_EQ(p.rhs_value(), Value::String("frozen food"));
  EXPECT_EQ(p.ToString(schema_), "cargo.desc = \"frozen food\"");
}

TEST_F(PredicateTest, ParseAllOperators) {
  for (const char* text :
       {"cargo.weight = 5", "cargo.weight != 5", "cargo.weight < 5",
        "cargo.weight <= 5", "cargo.weight > 5", "cargo.weight >= 5",
        "cargo.weight == 5", "cargo.weight <> 5"}) {
    EXPECT_TRUE(ParsePredicate(schema_, text).ok()) << text;
  }
}

TEST_F(PredicateTest, ParseFlipsConstantOnLeft) {
  ASSERT_OK_AND_ASSIGN(Predicate p,
                       ParsePredicate(schema_, "40 >= cargo.weight"));
  EXPECT_TRUE(p.is_attr_const());
  EXPECT_EQ(p.op(), CompareOp::kLe);  // cargo.weight <= 40
  EXPECT_EQ(p.rhs_value(), Value::Int(40));
}

TEST_F(PredicateTest, ParseAttrAttrCanonicalizes) {
  ASSERT_OK_AND_ASSIGN(
      Predicate p,
      ParsePredicate(schema_, "driver.licenseClass >= vehicle.vclass"));
  ASSERT_OK_AND_ASSIGN(
      Predicate q,
      ParsePredicate(schema_, "vehicle.vclass <= driver.licenseClass"));
  EXPECT_TRUE(p.is_attr_attr());
  EXPECT_EQ(p, q);  // same canonical form regardless of writing order
  EXPECT_EQ(p.Hash(), q.Hash());
}

TEST_F(PredicateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParsePredicate(schema_, "cargo.desc").ok());
  EXPECT_FALSE(ParsePredicate(schema_, "nothing here").ok());
  EXPECT_FALSE(ParsePredicate(schema_, "ghost.attr = 1").ok());
  EXPECT_FALSE(ParsePredicate(schema_, "cargo.ghost = 1").ok());
  EXPECT_FALSE(ParsePredicate(schema_, "= 5").ok());
}

TEST_F(PredicateTest, QuotedOperatorCharactersAreNotOperators) {
  ASSERT_OK_AND_ASSIGN(
      Predicate p, ParsePredicate(schema_, "cargo.desc = \"a < b = c\""));
  EXPECT_EQ(p.rhs_value(), Value::String("a < b = c"));
}

TEST_F(PredicateTest, ReferencedClasses) {
  ASSERT_OK_AND_ASSIGN(Predicate single,
                       ParsePredicate(schema_, "cargo.weight <= 40"));
  EXPECT_EQ(single.ReferencedClasses().size(), 1u);
  EXPECT_TRUE(single.IsSingleClass());

  ASSERT_OK_AND_ASSIGN(
      Predicate join,
      ParsePredicate(schema_, "driver.licenseClass >= vehicle.vclass"));
  EXPECT_EQ(join.ReferencedClasses().size(), 2u);
  EXPECT_FALSE(join.IsSingleClass());
}

TEST_F(PredicateTest, EqualityDistinguishesOpAndValue) {
  AttrRef w = schema_.ResolveQualified("cargo.weight").value();
  Predicate a = Predicate::AttrConst(w, CompareOp::kLe, Value::Int(40));
  Predicate b = Predicate::AttrConst(w, CompareOp::kLt, Value::Int(40));
  Predicate c = Predicate::AttrConst(w, CompareOp::kLe, Value::Int(41));
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a, Predicate::AttrConst(w, CompareOp::kLe, Value::Int(40)));
}

TEST(CompareOpTest, FlipAndNegate) {
  EXPECT_EQ(FlipCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(FlipCompareOp(CompareOp::kLe), CompareOp::kGe);
  EXPECT_EQ(FlipCompareOp(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(NegateCompareOp(CompareOp::kEq), CompareOp::kNe);
  EXPECT_EQ(NegateCompareOp(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(NegateCompareOp(CompareOp::kGe), CompareOp::kLt);
}

TEST(CompareOpTest, EvalCompareSemantics) {
  EXPECT_TRUE(EvalCompare(Value::Int(3), CompareOp::kEq, Value::Int(3)));
  EXPECT_TRUE(EvalCompare(Value::Int(3), CompareOp::kLe, Value::Double(3.5)));
  EXPECT_FALSE(EvalCompare(Value::Int(3), CompareOp::kGt, Value::Int(3)));
  // Incomparable evaluates false for EVERY operator, including !=.
  EXPECT_FALSE(EvalCompare(Value::Null(), CompareOp::kEq, Value::Int(3)));
  EXPECT_FALSE(EvalCompare(Value::Null(), CompareOp::kNe, Value::Int(3)));
  EXPECT_FALSE(
      EvalCompare(Value::String("3"), CompareOp::kEq, Value::Int(3)));
}

// Parameterized: every operator against an ordered triple.
class EvalSweepTest
    : public ::testing::TestWithParam<std::tuple<CompareOp, int, bool>> {};

TEST_P(EvalSweepTest, AgainstFive) {
  const auto& [op, lhs, expected] = GetParam();
  EXPECT_EQ(EvalCompare(Value::Int(lhs), op, Value::Int(5)), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EvalSweepTest,
    ::testing::Values(
        std::tuple{CompareOp::kLt, 4, true},
        std::tuple{CompareOp::kLt, 5, false},
        std::tuple{CompareOp::kLe, 5, true},
        std::tuple{CompareOp::kLe, 6, false},
        std::tuple{CompareOp::kGt, 6, true},
        std::tuple{CompareOp::kGt, 5, false},
        std::tuple{CompareOp::kGe, 5, true},
        std::tuple{CompareOp::kGe, 4, false},
        std::tuple{CompareOp::kEq, 5, true},
        std::tuple{CompareOp::kEq, 4, false},
        std::tuple{CompareOp::kNe, 4, true},
        std::tuple{CompareOp::kNe, 5, false}));

}  // namespace
}  // namespace sqopt

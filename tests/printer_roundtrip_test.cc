// Printer round-trip property: PrintQuery output must re-parse via
// ParseQuery to an equivalent Query, for generated queries covering
// every schema path shape. Engine::Explain emits the transformed query
// in this textual form, so users can re-submit what Explain shows —
// the property is what makes that workflow sound.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"
#include "query/query_parser.h"
#include "tests/test_util.h"
#include "workload/example_schema.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

namespace sqopt {
namespace {

void ExpectRoundTrips(const Schema& schema, const Query& query,
                      const std::string& context) {
  std::string text = PrintQuery(schema, query);
  auto reparsed = ParseQuery(schema, text);
  ASSERT_TRUE(reparsed.ok())
      << context << ": '" << text << "' failed to re-parse: "
      << reparsed.status().ToString();
  Query expected = query;
  Query actual = std::move(reparsed).value();
  expected.Normalize();
  actual.Normalize();
  EXPECT_EQ(expected, actual) << context << ": '" << text << "'";

  // The pretty form must round-trip too (it differs in whitespace
  // only, which the parser ignores).
  auto pretty = ParseQuery(schema, PrintQueryPretty(schema, query));
  ASSERT_TRUE(pretty.ok()) << context;
  Query pretty_query = std::move(pretty).value();
  pretty_query.Normalize();
  EXPECT_EQ(expected, pretty_query) << context;
}

TEST(PrinterRoundTripTest, PaperSampleQuery) {
  auto schema = BuildFigure21Schema();
  ASSERT_TRUE(schema.ok());
  auto query = Figure23SampleQuery(*schema);
  ASSERT_TRUE(query.ok());
  ExpectRoundTrips(*schema, *query, "figure 2.3");
}

// Property test over generated path queries: every sampled query —
// across path lengths, predicate menus, and projections — must
// round-trip.
TEST(PrinterRoundTripTest, GeneratedQueriesRoundTrip) {
  auto schema = BuildExperimentSchema();
  ASSERT_TRUE(schema.ok());
  std::vector<SchemaPath> paths = EnumerateSimplePaths(*schema, 1, 5);

  for (uint64_t seed : {1u, 1991u, 424242u}) {
    QueryGenOptions options;
    options.predicate_probability = 0.9;
    QueryGenerator gen(&*schema, seed, options);
    auto queries = gen.Sample(paths, 100);
    ASSERT_TRUE(queries.ok());
    for (size_t i = 0; i < queries->size(); ++i) {
      ExpectRoundTrips(*schema, (*queries)[i],
                       "seed " + std::to_string(seed) + " q" +
                           std::to_string(i));
    }
  }
}

// The transformed queries the optimizer emits (predicate introduction,
// elimination, class elimination) must round-trip as well — these are
// exactly the queries Engine::Explain prints.
TEST(PrinterRoundTripTest, TransformedQueriesRoundTrip) {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  ASSERT_TRUE(opened.ok());
  Engine engine = std::move(opened).value();
  ASSERT_OK(engine.Load(
      DataSource::Generated(DbSpec{"roundtrip", 104, 154}, 7)));

  std::vector<SchemaPath> paths =
      EnumerateSimplePaths(engine.schema(), 1, 5);
  QueryGenOptions options;
  options.trigger_probability = 0.9;
  QueryGenerator gen(&engine.schema(), 1991, options);
  auto queries = gen.Sample(paths, 60);
  ASSERT_TRUE(queries.ok());

  size_t transformed_count = 0;
  for (size_t i = 0; i < queries->size(); ++i) {
    auto outcome = engine.Analyze((*queries)[i]);
    ASSERT_TRUE(outcome.ok());
    if (outcome->report.num_firings > 0) ++transformed_count;
    ExpectRoundTrips(engine.schema(), outcome->transformed,
                     "transformed q" + std::to_string(i));
  }
  // The property must have exercised real transformations, not just
  // identity rewrites.
  EXPECT_GT(transformed_count, 10u);
}

// Explain's "transformed:" line is the printer output; it must be
// directly re-submittable to the engine.
TEST(PrinterRoundTripTest, ExplainOutputReParses) {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  ASSERT_TRUE(opened.ok());
  Engine engine = std::move(opened).value();

  const char* text =
      "{cargo.code} {} {cargo.desc = \"frozen food\", "
      "supplier.region = \"west\"} {supplies} {supplier, cargo}";
  auto explained = engine.Explain(text);
  ASSERT_TRUE(explained.ok());
  const std::string& out = *explained;
  size_t pos = out.find("transformed: ");
  ASSERT_NE(pos, std::string::npos) << out;
  size_t start = pos + std::string("transformed: ").size();
  size_t end = out.find('\n', start);
  std::string transformed_text = out.substr(start, end - start);

  auto reparsed = engine.Parse(transformed_text);
  ASSERT_TRUE(reparsed.ok())
      << "'" << transformed_text
      << "': " << reparsed.status().ToString();
}

}  // namespace
}  // namespace sqopt

// Structural properties of the transformation algorithm claimed in the
// paper: order immateriality, monotone tag lowering, and the O(m·n)
// work bound (each relevant constraint fires O(1) times; each firing
// touches one column of n rows).
#include <gtest/gtest.h>

#include <map>

#include "query/query_printer.h"
#include "sqo/optimizer.h"
#include "tests/test_util.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

namespace sqopt {
namespace {

using sqopt::testing::ExperimentFixture;

class BoundsTest : public ExperimentFixture,
                   public ::testing::WithParamInterface<uint64_t> {};

TEST_P(BoundsTest, FiringsAndWritesWithinPolynomialBound) {
  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 5);
  QueryGenerator gen(&schema_, GetParam());
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 20));
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  for (const Query& query : queries) {
    ASSERT_OK_AND_ASSIGN(OptimizeResult opt, optimizer.Optimize(query));
    const OptimizationReport& r = opt.report;
    size_t m = r.num_distinct_predicates;
    size_t n = r.num_relevant_constraints;
    // Each constraint fires at most twice (once to optional via an
    // inter row, once more to redundant via an intra row in the same
    // column) — bounded by 2n.
    EXPECT_LE(r.num_firings, 2 * n) << PrintQuery(schema_, query);
    // Each firing writes at most its fire-target columns (≤ m cells
    // each of n rows): total cell writes within c·m·n.
    EXPECT_LE(r.cell_writes, 2 * m * n + m) << PrintQuery(schema_, query);
    // Queue update passes are bounded by firings + 1 final empty pass.
    EXPECT_LE(r.queue_updates, r.num_firings + 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsTest,
                         ::testing::Values(11, 22, 33, 44, 55));

class OrderImmaterialTest : public ExperimentFixture {};

// The headline claim: the order in which transformations are applied
// does not change the outcome. We permute the relevant-constraint
// order via the priority queue (which reorders processing) and by
// reversing the grouping retrieval order, then compare final tags.
TEST_F(OrderImmaterialTest, FifoAndPriorityQueueAgreeOnFinalQuery) {
  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 5);
  QueryGenerator gen(&schema_, 777);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 25));

  OptimizerOptions fifo;
  fifo.queue = QueueDiscipline::kFifo;
  OptimizerOptions prio;
  prio.queue = QueueDiscipline::kPriority;

  SemanticOptimizer opt_fifo(&schema_, catalog_.get(), nullptr, fifo);
  SemanticOptimizer opt_prio(&schema_, catalog_.get(), nullptr, prio);

  for (const Query& query : queries) {
    ASSERT_OK_AND_ASSIGN(OptimizeResult a, opt_fifo.Optimize(query));
    ASSERT_OK_AND_ASSIGN(OptimizeResult b, opt_prio.Optimize(query));
    Query qa = a.query, qb = b.query;
    qa.Normalize();
    qb.Normalize();
    EXPECT_EQ(qa, qb) << PrintQuery(schema_, query);
    EXPECT_EQ(a.empty_result, b.empty_result);
  }
}

TEST_F(OrderImmaterialTest, FinalTagsIndependentOfConstraintOrder) {
  // Build two catalogs whose base constraints are added in opposite
  // orders; relevant lists then come back in different orders.
  auto constraints = ExperimentConstraints(schema_);
  ASSERT_TRUE(constraints.ok());

  ConstraintCatalog forward(&schema_);
  for (const HornClause& c : *constraints) {
    ASSERT_OK(forward.AddConstraint(c));
  }
  ConstraintCatalog backward(&schema_);
  for (auto it = constraints->rbegin(); it != constraints->rend(); ++it) {
    ASSERT_OK(backward.AddConstraint(*it));
  }
  AccessStats stats(schema_.num_classes());
  ASSERT_OK(forward.Precompile(&stats));
  ASSERT_OK(backward.Precompile(&stats));

  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 5);
  QueryGenerator gen(&schema_, 31337);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 25));

  SemanticOptimizer opt_fwd(&schema_, &forward, nullptr);
  SemanticOptimizer opt_bwd(&schema_, &backward, nullptr);
  for (const Query& query : queries) {
    ASSERT_OK_AND_ASSIGN(OptimizeResult a, opt_fwd.Optimize(query));
    ASSERT_OK_AND_ASSIGN(OptimizeResult b, opt_bwd.Optimize(query));

    // Compare final tag per predicate (keyed by printed form).
    std::map<std::string, PredicateTag> tags_a, tags_b;
    for (const FinalPredicate& fp : a.report.final_predicates) {
      tags_a[fp.predicate.ToString(schema_)] = fp.tag;
    }
    for (const FinalPredicate& fp : b.report.final_predicates) {
      tags_b[fp.predicate.ToString(schema_)] = fp.tag;
    }
    EXPECT_EQ(tags_a, tags_b) << PrintQuery(schema_, query);

    Query qa = a.query, qb = b.query;
    qa.Normalize();
    qb.Normalize();
    EXPECT_EQ(qa, qb);
  }
}

class MonotonicityTest : public ExperimentFixture {};

TEST_F(MonotonicityTest, StepsOnlyLowerTags) {
  // Within any single run, once a predicate is recorded at a tag, any
  // later effect on the same predicate must be at the same or lower
  // tag.
  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 5);
  QueryGenerator gen(&schema_, 909);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 25));
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  for (const Query& query : queries) {
    ASSERT_OK_AND_ASSIGN(OptimizeResult opt, optimizer.Optimize(query));
    std::map<std::string, PredicateTag> seen;
    for (const TransformStep& step : opt.report.steps) {
      for (const auto& [pred, tag] : step.effects) {
        std::string key = pred.ToString(schema_);
        auto it = seen.find(key);
        if (it != seen.end()) {
          EXPECT_FALSE(TagLowerThan(it->second, tag))
              << key << " was raised from "
              << PredicateTagName(it->second) << " to "
              << PredicateTagName(tag);
        }
        seen[key] = tag;
      }
    }
  }
}

TEST_F(MonotonicityTest, OptimizationIsIdempotent) {
  // Optimizing an already-optimized query must be a no-op on results:
  // re-optimizing yields the same final query (tags can re-derive, but
  // the formulated output is stable).
  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 5);
  QueryGenerator gen(&schema_, 515);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 15));
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  for (const Query& query : queries) {
    ASSERT_OK_AND_ASSIGN(OptimizeResult once, optimizer.Optimize(query));
    if (once.empty_result) continue;
    ASSERT_OK_AND_ASSIGN(OptimizeResult twice,
                         optimizer.Optimize(once.query));
    Query qa = once.query, qb = twice.query;
    qa.Normalize();
    qb.Normalize();
    EXPECT_EQ(qa, qb) << PrintQuery(schema_, query);
  }
}

}  // namespace
}  // namespace sqopt

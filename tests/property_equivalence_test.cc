// THE soundness property of semantic query optimization: the transformed
// query returns exactly the same answer as the original in every
// (consistent) database state. Checked end-to-end over the generated
// path-query workload against generated database instances.
#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/plan_builder.h"
#include "query/query_printer.h"
#include "sqo/optimizer.h"
#include "tests/test_util.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

namespace sqopt {
namespace {

using sqopt::testing::ExperimentFixture;

struct EquivalenceParam {
  uint64_t seed;
  MatchMode match_mode;
  bool with_cost_model;
};

class EquivalenceTest
    : public ExperimentFixture,
      public ::testing::WithParamInterface<EquivalenceParam> {};

TEST_P(EquivalenceTest, OptimizedQueryReturnsSameRows) {
  const EquivalenceParam& param = GetParam();

  ASSERT_OK_AND_ASSIGN(
      auto store,
      GenerateDatabase(schema_, DbSpec{"EQ", 48, 96}, param.seed));
  DatabaseStats stats = CollectStats(*store);
  CostModel cost_model(&schema_, &stats);

  OptimizerOptions options;
  options.match_mode = param.match_mode;
  SemanticOptimizer optimizer(
      &schema_, catalog_.get(),
      param.with_cost_model ? &cost_model : nullptr, options);

  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 5);
  QueryGenerator gen(&schema_, param.seed * 977 + 13);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 25));

  int optimized_count = 0;
  for (const Query& query : queries) {
    ASSERT_OK_AND_ASSIGN(ResultSet original,
                         ExecuteQuery(*store, query, nullptr));

    ASSERT_OK_AND_ASSIGN(OptimizeResult opt, optimizer.Optimize(query));
    if (opt.report.num_firings > 0) ++optimized_count;

    ResultSet transformed;
    if (opt.empty_result) {
      // Contradiction short-circuit: answer without the store.
    } else {
      ASSERT_OK_AND_ASSIGN(transformed,
                           ExecuteQuery(*store, opt.query, nullptr));
    }
    // Predicate-only rewrites preserve bags; class elimination preserves
    // the distinct result set (set semantics, see DESIGN.md).
    bool same = opt.report.eliminated_classes.empty()
                    ? original.SameRows(transformed)
                    : original.SameDistinctRows(transformed);
    EXPECT_TRUE(same)
        << "MISMATCH\n  original:    " << PrintQuery(schema_, query)
        << "\n  transformed: " << PrintQuery(schema_, opt.query)
        << "\n  empty_result: " << opt.empty_result << "\n  rows "
        << original.rows.size() << " vs " << transformed.rows.size();
  }
  // The workload must actually exercise the optimizer.
  EXPECT_GT(optimized_count, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Values(
        EquivalenceParam{1, MatchMode::kImplied, true},
        EquivalenceParam{2, MatchMode::kImplied, true},
        EquivalenceParam{3, MatchMode::kImplied, false},
        EquivalenceParam{4, MatchMode::kExact, true},
        EquivalenceParam{5, MatchMode::kExact, false},
        EquivalenceParam{6, MatchMode::kImplied, true},
        EquivalenceParam{7, MatchMode::kExact, true},
        EquivalenceParam{8, MatchMode::kImplied, false}));

// Projection classes are never eliminated: checked across the workload.
class ProjectionGuardTest : public ExperimentFixture {};

TEST_F(ProjectionGuardTest, ProjectedClassesSurviveOptimization) {
  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 5);
  QueryGenerator gen(&schema_, 4242);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 30));
  SemanticOptimizer optimizer(&schema_, catalog_.get(), nullptr);
  for (const Query& query : queries) {
    ASSERT_OK_AND_ASSIGN(OptimizeResult opt, optimizer.Optimize(query));
    for (const AttrRef& ref : query.projection) {
      EXPECT_TRUE(opt.query.ReferencesClass(ref.class_id))
          << PrintQuery(schema_, query);
    }
    EXPECT_OK(ValidateQuery(schema_, opt.query));
  }
}

}  // namespace
}  // namespace sqopt

// Property: semantic optimization driven purely by MINED state rules is
// sound on the state they were mined from — the optimized query returns
// the same answer as the original against that store. This exercises
// the optimizer with a much wider and more irregular constraint
// population than the 15 hand-written clauses (hundreds of value and
// range rules with diverse operators).
#include <gtest/gtest.h>

#include "constraints/rule_derivation.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/plan_builder.h"
#include "query/query_printer.h"
#include "sqo/optimizer.h"
#include "tests/test_util.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

namespace sqopt {
namespace {

using sqopt::testing::ExperimentFixture;

class MinedEquivalenceTest
    : public ExperimentFixture,
      public ::testing::WithParamInterface<uint64_t> {};

TEST_P(MinedEquivalenceTest, MinedRulesPreserveQueryAnswers) {
  uint64_t seed = GetParam();
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"MINE", 48, 96}, seed));

  // Catalog = integrity constraints + everything the miner finds.
  ConstraintCatalog catalog(&schema_);
  ASSERT_OK_AND_ASSIGN(auto integrity, ExperimentConstraints(schema_));
  for (HornClause& c : integrity) {
    ASSERT_OK(catalog.AddConstraint(std::move(c)));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> mined,
                       DeriveStateRules(*store));
  size_t added = 0;
  for (HornClause& rule : mined) {
    if (catalog.AddConstraint(std::move(rule)).ok()) ++added;
  }
  ASSERT_GT(added, 20u);
  AccessStats access(schema_.num_classes());
  // Mined rule sets chain heavily; give the closure generous caps.
  PrecompileOptions precompile;
  precompile.closure.max_derived = 20000;
  ASSERT_OK(catalog.Precompile(&access, precompile));

  DatabaseStats stats = CollectStats(*store);
  CostModel cost_model(&schema_, &stats);
  SemanticOptimizer optimizer(&schema_, &catalog, &cost_model);

  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 4);
  QueryGenerator gen(&schema_, seed + 5);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 20));

  int transformed = 0;
  for (const Query& query : queries) {
    ASSERT_OK_AND_ASSIGN(ResultSet original,
                         ExecuteQuery(*store, query, nullptr));
    ASSERT_OK_AND_ASSIGN(OptimizeResult opt, optimizer.Optimize(query));
    if (opt.report.num_firings > 0) ++transformed;
    ResultSet optimized;
    if (!opt.empty_result) {
      ASSERT_OK_AND_ASSIGN(optimized,
                           ExecuteQuery(*store, opt.query, nullptr));
    }
    bool same = opt.report.eliminated_classes.empty()
                    ? original.SameRows(optimized)
                    : original.SameDistinctRows(optimized);
    EXPECT_TRUE(same) << "original:    " << PrintQuery(schema_, query)
                      << "\ntransformed: "
                      << PrintQuery(schema_, opt.query) << "\nempty="
                      << opt.empty_result;
  }
  EXPECT_GT(transformed, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinedEquivalenceTest,
                         ::testing::Values(71, 72, 73, 74));

}  // namespace
}  // namespace sqopt

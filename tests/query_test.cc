#include "query/query.h"

#include <gtest/gtest.h>

#include "query/query_parser.h"
#include "query/query_printer.h"
#include "tests/test_util.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, BuildExperimentSchema());
  }
  Schema schema_;
};

constexpr const char* kSample = R"(
(SELECT {vehicle.vehicleNo, cargo.desc}
        {}
        {vehicle.desc = "refrigerated truck", supplier.region = "west"}
        {collects, supplies}
        {supplier, cargo, vehicle}))";

TEST_F(QueryTest, ParseSample) {
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(schema_, kSample));
  EXPECT_EQ(q.projection.size(), 2u);
  EXPECT_EQ(q.join_predicates.size(), 0u);
  EXPECT_EQ(q.selective_predicates.size(), 2u);
  EXPECT_EQ(q.relationships.size(), 2u);
  EXPECT_EQ(q.classes.size(), 3u);
}

TEST_F(QueryTest, ParseWithoutParensOrSelect) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(schema_, "{cargo.desc} {} {} {} {cargo}"));
  EXPECT_EQ(q.classes.size(), 1u);
  EXPECT_TRUE(q.relationships.empty());
}

TEST_F(QueryTest, ParseJoinPredicateGroup) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(schema_,
                 "{driver.name} {driver.licenseClass >= vehicle.vclass} "
                 "{} {drives} {driver, vehicle}"));
  EXPECT_EQ(q.join_predicates.size(), 1u);
  EXPECT_TRUE(q.join_predicates[0].is_attr_attr());
}

TEST_F(QueryTest, ParseRejectsJoinInSelectiveGroup) {
  EXPECT_FALSE(
      ParseQuery(schema_,
                 "{driver.name} {} {driver.licenseClass >= vehicle.vclass} "
                 "{drives} {driver, vehicle}")
          .ok());
}

TEST_F(QueryTest, ParseRejectsSelectiveInJoinGroup) {
  EXPECT_FALSE(ParseQuery(schema_,
                          "{driver.name} {driver.licenseClass >= 3} {} "
                          "{drives} {driver, vehicle}")
                   .ok());
}

TEST_F(QueryTest, ParseIgnoresProjectionAnnotations) {
  // The paper writes introduced predicates inline in the projection:
  // {cargo.desc="frozen food"}. Parser keeps only the attribute.
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(schema_,
                          "{cargo.desc=\"frozen food\"} {} {} {} {cargo}"));
  EXPECT_EQ(q.projection.size(), 1u);
}

TEST_F(QueryTest, ParseRejectsUnknownNames) {
  EXPECT_FALSE(ParseQuery(schema_, "{x.y} {} {} {} {ghost}").ok());
  EXPECT_FALSE(
      ParseQuery(schema_, "{cargo.desc} {} {} {ghostrel} {cargo}").ok());
  EXPECT_FALSE(
      ParseQuery(schema_, "{cargo.ghost} {} {} {} {cargo}").ok());
}

TEST_F(QueryTest, ParseRejectsMissingGroups) {
  EXPECT_FALSE(ParseQuery(schema_, "{cargo.desc} {} {} {}").ok());
  EXPECT_FALSE(ParseQuery(schema_, "").ok());
}

TEST_F(QueryTest, ParseRejectsTrailingGarbage) {
  EXPECT_FALSE(
      ParseQuery(schema_, "{cargo.desc} {} {} {} {cargo} trailing").ok());
}

TEST_F(QueryTest, ValidateRejectsForeignClassPredicates) {
  // vehicle predicate while only cargo is listed.
  EXPECT_FALSE(
      ParseQuery(schema_,
                 "{cargo.desc} {} {vehicle.vclass >= 3} {} {cargo}")
          .ok());
}

TEST_F(QueryTest, ValidateRejectsDisconnectedGraph) {
  // Two classes, no relationship.
  EXPECT_FALSE(
      ParseQuery(schema_, "{cargo.desc} {} {} {} {cargo, vehicle}").ok());
}

TEST_F(QueryTest, ValidateRejectsRelationshipOutsideClassList) {
  EXPECT_FALSE(
      ParseQuery(schema_, "{cargo.desc} {} {} {collects} {cargo}").ok());
}

TEST_F(QueryTest, PrintParseRoundTrip) {
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(schema_, kSample));
  std::string printed = PrintQuery(schema_, q);
  ASSERT_OK_AND_ASSIGN(Query q2, ParseQuery(schema_, printed));
  EXPECT_EQ(q, q2);
  // Pretty form parses too.
  ASSERT_OK_AND_ASSIGN(Query q3,
                       ParseQuery(schema_, PrintQueryPretty(schema_, q)));
  EXPECT_EQ(q, q3);
}

TEST_F(QueryTest, NormalizeMakesOrderIrrelevant) {
  ASSERT_OK_AND_ASSIGN(
      Query a,
      ParseQuery(schema_,
                 "{cargo.desc} {} {cargo.weight <= 40, cargo.quantity >= "
                 "500} {} {cargo}"));
  ASSERT_OK_AND_ASSIGN(
      Query b,
      ParseQuery(schema_,
                 "{cargo.desc} {} {cargo.quantity >= 500, cargo.weight <= "
                 "40} {} {cargo}"));
  EXPECT_FALSE(a == b);
  a.Normalize();
  b.Normalize();
  EXPECT_EQ(a, b);
}

TEST_F(QueryTest, StructureQueries) {
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(schema_, kSample));
  ClassId supplier = schema_.FindClass("supplier");
  ClassId cargo = schema_.FindClass("cargo");
  ClassId driver = schema_.FindClass("driver");
  EXPECT_TRUE(q.ReferencesClass(supplier));
  EXPECT_FALSE(q.ReferencesClass(driver));
  EXPECT_EQ(q.RelationshipDegree(supplier, schema_), 1);
  EXPECT_EQ(q.RelationshipDegree(cargo, schema_), 2);
  EXPECT_TRUE(q.ProjectsFrom(cargo));
  EXPECT_FALSE(q.ProjectsFrom(supplier));
  EXPECT_EQ(q.AllPredicates().size(), 2u);
}

}  // namespace
}  // namespace sqopt

// Integration tests for WAL-shipping replication (src/replica/) and
// the v2 serving surface it rides on: HELLO version negotiation and
// the typed kUnsupportedVersion refusal, kApply/kCheckpoint over real
// loopback sockets, read-only follower endpoints, commit streaming to
// a live FollowerApplier with bit-identical convergence, catch-up from
// a stale version, gap detection halting the applier as divergence,
// the retention-floor re-seed signal, and RemoteShard — the
// EngineInterface that speaks v2 to a remote server. The process-level
// SIGKILL legs live in tools/replica_harness.cpp (CI replication-smoke).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "replica/follower.h"
#include "replica/replication_log.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "shard/remote_shard.h"
#include "tests/test_util.h"
#include "workload/mutation_script.h"

namespace sqopt::replica {
namespace {

using server::Client;
using server::Request;
using server::RequestType;
using server::Response;
using server::Server;
using server::ServerOptions;

constexpr uint64_t kSeed = 20260807;
const DbSpec kSpec{"replica_test", 40, 60};

Engine OpenLoadedEngine() {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  Engine engine = std::move(opened).value();
  Status s = engine.Load(DataSource::Generated(kSpec, kSeed));
  EXPECT_TRUE(s.ok()) << s.ToString();
  return engine;
}

std::vector<int64_t> BaseRows(const Engine& engine) {
  std::vector<int64_t> rows;
  for (const ObjectClass& oc : engine.schema().classes()) {
    rows.push_back(engine.store()->NumObjects(oc.id));
  }
  return rows;
}

std::unique_ptr<Server> StartServer(EngineInterface* engine,
                                    ServerOptions options = {},
                                    ReplicationLog* log = nullptr) {
  options.port = 0;
  auto started = Server::Start(engine, options, log);
  EXPECT_TRUE(started.ok()) << started.status().ToString();
  return std::move(started).value();
}

Client MustConnect(const Server& server) {
  auto client = Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

// Two engines agree when every fixture query returns the same distinct
// result set (the engine's query equality notion).
void ExpectConverged(const Engine& a, const Engine& b) {
  ASSERT_EQ(a.data_version(), b.data_version());
  for (const std::string& text : MutationScript::QueryPool()) {
    auto ra = a.Execute(text);
    auto rb = b.Execute(text);
    ASSERT_TRUE(ra.ok() && rb.ok()) << text;
    EXPECT_TRUE(ra->rows.SameDistinctRows(rb->rows)) << "diverged on " << text;
  }
}

void AwaitHalt(const FollowerApplier& applier, int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    if (!applier.status().ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// --- Handshake -----------------------------------------------------

TEST(ReplicaTest, HelloNegotiatesV2AndAdvertisesReplication) {
  Engine engine = OpenLoadedEngine();
  ReplicationLog log;
  log.AttachTo(&engine);
  std::unique_ptr<Server> leader = StartServer(&engine, {}, &log);

  Client client = MustConnect(*leader);
  EXPECT_EQ(client.protocol(), 1u);
  ASSERT_OK_AND_ASSIGN(Response hello, client.Hello());
  ASSERT_TRUE(hello.ok()) << hello.message;
  EXPECT_EQ(hello.protocol_version, 2u);
  EXPECT_EQ(client.protocol(), 2u);
  EXPECT_NE(hello.feature_bits & server::kFeatureReplication, 0u);
  leader->Shutdown();

  // A plain server negotiates v2 too but does not advertise the
  // replication feature — it has no log to stream from.
  Engine plain = OpenLoadedEngine();
  std::unique_ptr<Server> basic = StartServer(&plain);
  Client c2 = MustConnect(*basic);
  ASSERT_OK_AND_ASSIGN(Response h2, c2.Hello());
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h2.feature_bits & server::kFeatureReplication, 0u);
}

TEST(ReplicaTest, V1ClientAgainstV2OnlyEndpointGetsTypedRefusal) {
  Engine engine = OpenLoadedEngine();
  ServerOptions options;
  options.min_protocol = 2;
  std::unique_ptr<Server> server = StartServer(&engine, options);

  // A v1 client's very first request — no HELLO — must come back as
  // ONE typed kUnsupportedVersion naming both versions, then a clean
  // close; never a hang or an unframeable response.
  Client v1 = MustConnect(*server);
  Request query;
  query.type = RequestType::kQuery;
  query.query_text = "{cargo.code} {} {} {} {cargo}";
  ASSERT_OK(v1.SendRaw(EncodeRequest(query, /*protocol_version=*/1)));
  ASSERT_OK_AND_ASSIGN(Response refusal, v1.ReceiveResponse());
  EXPECT_EQ(refusal.code, StatusCode::kUnsupportedVersion);
  EXPECT_NE(refusal.message.find("v1"), std::string::npos) << refusal.message;
  EXPECT_NE(refusal.message.find("v2"), std::string::npos) << refusal.message;
  EXPECT_FALSE(v1.ReceiveResponse().ok());  // connection closed

  // An explicit HELLO asking for v1 gets the same refusal.
  Client hello1 = MustConnect(*server);
  ASSERT_OK_AND_ASSIGN(Response h, hello1.Hello(/*version=*/1));
  EXPECT_EQ(h.code, StatusCode::kUnsupportedVersion);
  EXPECT_FALSE(hello1.ReceiveResponse().ok());

  // A v2 handshake sails through the same endpoint.
  Client v2 = MustConnect(*server);
  ASSERT_OK_AND_ASSIGN(Response ok, v2.Hello());
  EXPECT_TRUE(ok.ok()) << ok.message;
  EXPECT_GE(server->stats().unsupported_version, 2u);
}

TEST(ReplicaTest, V2TypeBeforeHelloIsRefusedBothSides) {
  Engine engine = OpenLoadedEngine();
  std::unique_ptr<Server> server = StartServer(&engine);
  Client client = MustConnect(*server);

  // Client-side gate: the wrapper refuses to encode v2 types on a v1
  // connection.
  MutationScript script(&engine.schema(), BaseRows(engine), kSeed);
  ASSERT_OK_AND_ASSIGN(MutationBatch batch, script.Next());
  auto early = client.Apply(batch);
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kUnsupportedVersion);

  // Server-side gate: v2 bytes shoved down a v1 connection get the
  // typed refusal, not corruption.
  Request raw;
  raw.type = RequestType::kSubscribe;
  raw.from_version = 1;
  ASSERT_OK(client.SendRaw(EncodeRequest(raw, /*protocol_version=*/2)));
  ASSERT_OK_AND_ASSIGN(Response refusal, client.ReceiveResponse());
  EXPECT_EQ(refusal.code, StatusCode::kUnsupportedVersion);
}

// --- The v2 write surface ------------------------------------------

TEST(ReplicaTest, ApplyAndCheckpointOverWire) {
  Engine engine = OpenLoadedEngine();
  // Checkpoint needs a durable engine (it folds the WAL into the
  // snapshot on disk).
  ASSERT_OK(engine.Save(::testing::TempDir() + "/replica_apply_ck"));
  std::unique_ptr<Server> server = StartServer(&engine);
  Client client = MustConnect(*server);
  ASSERT_OK_AND_ASSIGN(Response hello, client.Hello());
  ASSERT_TRUE(hello.ok());

  MutationScript script(&engine.schema(), BaseRows(engine), kSeed);
  ASSERT_OK_AND_ASSIGN(MutationBatch batch, script.Next());
  ASSERT_OK_AND_ASSIGN(Response applied, client.Apply(batch));
  ASSERT_TRUE(applied.ok()) << applied.message;
  EXPECT_EQ(applied.snapshot_version, 2u);
  EXPECT_EQ(engine.data_version(), 2u);

  ASSERT_OK(client.Checkpoint());
  EXPECT_GE(engine.stats().checkpoints, 1u);
  server->Shutdown();
  EXPECT_EQ(server->stats().applies_ok, 1u);
  EXPECT_EQ(server->stats().protocol_errors, 0u);
}

TEST(ReplicaTest, ReadOnlyEndpointRejectsApplyTyped) {
  Engine engine = OpenLoadedEngine();
  ServerOptions options;
  options.read_only = true;
  std::unique_ptr<Server> server = StartServer(&engine, options);
  Client client = MustConnect(*server);
  ASSERT_OK_AND_ASSIGN(Response hello, client.Hello());
  ASSERT_TRUE(hello.ok());

  MutationScript script(&engine.schema(), BaseRows(engine), kSeed);
  ASSERT_OK_AND_ASSIGN(MutationBatch batch, script.Next());
  ASSERT_OK_AND_ASSIGN(Response rejected, client.Apply(batch));
  EXPECT_EQ(rejected.code, StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.message.find("leader"), std::string::npos)
      << rejected.message;
  EXPECT_EQ(engine.data_version(), 1u);  // nothing applied

  // Reads still serve.
  ASSERT_OK_AND_ASSIGN(Response read,
                       client.Query("{cargo.code} {} {} {} {cargo}"));
  EXPECT_TRUE(read.ok()) << read.message;
}

TEST(ReplicaTest, SubscribeToNonLeaderIsTyped) {
  Engine engine = OpenLoadedEngine();
  std::unique_ptr<Server> server = StartServer(&engine);  // no log
  Client client = MustConnect(*server);
  ASSERT_OK_AND_ASSIGN(Response hello, client.Hello());
  ASSERT_TRUE(hello.ok());
  ASSERT_OK_AND_ASSIGN(Response sub, client.Subscribe(1));
  EXPECT_EQ(sub.code, StatusCode::kFailedPrecondition);
  EXPECT_NE(sub.message.find("leader"), std::string::npos) << sub.message;
}

// --- Streaming replication -----------------------------------------

TEST(ReplicaTest, CommitsStreamToFollowerBitIdentically) {
  Engine leader = OpenLoadedEngine();
  ReplicationLog log;
  log.AttachTo(&leader);
  std::unique_ptr<Server> server = StartServer(&leader, {}, &log);

  Engine follower = OpenLoadedEngine();  // same deterministic fixture
  FollowerOptions fopts;
  fopts.leader_port = server->port();
  fopts.poll_interval_ms = 50;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<FollowerApplier> applier,
                       FollowerApplier::Start(&follower, fopts));

  // Commit through the engine directly — the commit listener, not the
  // serving path, is what feeds the log.
  MutationScript script(&leader.schema(), BaseRows(leader), kSeed);
  constexpr int kBatches = 8;
  for (int i = 0; i < kBatches; ++i) {
    ASSERT_OK_AND_ASSIGN(MutationBatch batch, script.Next());
    ASSERT_OK(leader.Apply(batch).status());
  }
  ASSERT_TRUE(applier->WaitForVersion(1 + kBatches, 10000))
      << applier->status().ToString();
  ExpectConverged(leader, follower);

  const FollowerStats fstats = applier->stats();
  EXPECT_EQ(fstats.records_applied, static_cast<uint64_t>(kBatches));
  EXPECT_TRUE(applier->status().ok());
  EXPECT_GE(server->stats().records_replicated,
            static_cast<uint64_t>(kBatches));
  EXPECT_EQ(server->stats().subscribers_active, 1u);
  applier->Stop();
  server->Shutdown();
}

TEST(ReplicaTest, StaleFollowerCatchesUpThenStreams) {
  Engine leader = OpenLoadedEngine();
  ReplicationLog log;
  log.AttachTo(&leader);
  std::unique_ptr<Server> server = StartServer(&leader, {}, &log);

  // The leader commits before any follower exists; the log retains.
  MutationScript script(&leader.schema(), BaseRows(leader), kSeed);
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(MutationBatch batch, script.Next());
    ASSERT_OK(leader.Apply(batch).status());
  }

  Engine follower = OpenLoadedEngine();
  FollowerOptions fopts;
  fopts.leader_port = server->port();
  fopts.poll_interval_ms = 50;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<FollowerApplier> applier,
                       FollowerApplier::Start(&follower, fopts));
  ASSERT_TRUE(applier->WaitForVersion(6, 10000))
      << applier->status().ToString();
  ExpectConverged(leader, follower);

  // And the stream continues live past the catch-up point. A restarted
  // applier (same engine, fresh subscription from its own version)
  // picks up exactly where the old one stopped.
  applier->Stop();
  applier.reset();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(MutationBatch batch, script.Next());
    ASSERT_OK(leader.Apply(batch).status());
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<FollowerApplier> resumed,
                       FollowerApplier::Start(&follower, fopts));
  ASSERT_TRUE(resumed->WaitForVersion(9, 10000))
      << resumed->status().ToString();
  ExpectConverged(leader, follower);
  EXPECT_TRUE(resumed->status().ok());
}

TEST(ReplicaTest, GapInStreamHaltsFollowerAsDivergence) {
  Engine leader = OpenLoadedEngine();
  Engine follower = OpenLoadedEngine();
  MutationScript script(&follower.schema(), BaseRows(follower), kSeed);
  ASSERT_OK_AND_ASSIGN(MutationBatch b1, script.Next());
  ASSERT_OK_AND_ASSIGN(MutationBatch b2, script.Next());

  // A hand-built log with a hole: versions 3..4 never shipped.
  ReplicationLog log;
  log.Append(2, {b1});
  log.Append(5, {b2});
  std::unique_ptr<Server> server = StartServer(&leader, {}, &log);

  FollowerOptions fopts;
  fopts.leader_port = server->port();
  fopts.poll_interval_ms = 50;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<FollowerApplier> applier,
                       FollowerApplier::Start(&follower, fopts));
  AwaitHalt(*applier);
  const Status halted = applier->status();
  ASSERT_FALSE(halted.ok());
  EXPECT_EQ(halted.code(), StatusCode::kCorruption);
  EXPECT_NE(halted.message().find("diverged"), std::string::npos)
      << halted.ToString();
  // The contiguous prefix WAS applied before the gap stopped the world.
  EXPECT_EQ(follower.data_version(), 2u);
}

TEST(ReplicaTest, RetentionFloorDemandsReseed) {
  Engine leader = OpenLoadedEngine();
  Engine follower = OpenLoadedEngine();
  MutationScript script(&follower.schema(), BaseRows(follower), kSeed);
  ASSERT_OK_AND_ASSIGN(MutationBatch batch, script.Next());

  // A log whose first retained record starts far past the follower:
  // the follower's version 1 is below the retention floor.
  ReplicationLog log;
  log.Append(10, {batch});
  EXPECT_EQ(log.floor_version(), 9u);
  std::unique_ptr<Server> server = StartServer(&leader, {}, &log);

  FollowerOptions fopts;
  fopts.leader_port = server->port();
  fopts.poll_interval_ms = 50;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<FollowerApplier> applier,
                       FollowerApplier::Start(&follower, fopts));
  AwaitHalt(*applier);
  const Status halted = applier->status();
  ASSERT_FALSE(halted.ok());
  EXPECT_EQ(halted.code(), StatusCode::kOutOfRange);
  EXPECT_NE(halted.message().find("re-seed"), std::string::npos)
      << halted.ToString();
  EXPECT_EQ(follower.data_version(), 1u);  // nothing applied
}

// --- RemoteShard ---------------------------------------------------

TEST(ReplicaTest, RemoteShardIsAnEngineInterfaceOverTheWire) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK(engine.Save(::testing::TempDir() + "/replica_remote_shard"));
  std::unique_ptr<Server> server = StartServer(&engine);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<shard::RemoteShard> remote,
                       shard::RemoteShard::Connect("127.0.0.1",
                                                   server->port()));
  EXPECT_TRUE(remote->has_data());
  EXPECT_EQ(remote->data_version(), engine.data_version());

  // Reads through the interface match in-process execution.
  const std::string query = "{cargo.code} {} {} {} {cargo}";
  ASSERT_OK_AND_ASSIGN(QueryOutcome local, engine.Execute(query));
  ASSERT_OK_AND_ASSIGN(QueryOutcome viaRemote, remote->Execute(query));
  EXPECT_TRUE(viaRemote.rows.SameDistinctRows(local.rows));

  // Writes through the interface reach the remote engine.
  MutationScript script(&engine.schema(), BaseRows(engine), kSeed);
  ASSERT_OK_AND_ASSIGN(MutationBatch b1, script.Next());
  ASSERT_OK_AND_ASSIGN(MutationBatch b2, script.Next());
  ASSERT_OK_AND_ASSIGN(ApplyOutcome outcome, remote->Apply(b1));
  EXPECT_EQ(outcome.snapshot_version, 2u);
  EXPECT_EQ(engine.data_version(), 2u);

  std::vector<MutationBatch> group;
  group.push_back(std::move(b2));
  std::vector<Result<ApplyOutcome>> outcomes =
      remote->ApplyGroup(std::span<const MutationBatch>(group));
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].status().ToString();
  EXPECT_EQ(remote->data_version(), 3u);

  ASSERT_OK(remote->Checkpoint());
  EXPECT_EQ(remote->stats().mutation_batches_applied,
            engine.stats().mutation_batches_applied);
  EXPECT_GE(remote->stats().checkpoints, 1u);
}

}  // namespace
}  // namespace sqopt::replica

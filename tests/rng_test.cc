#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace sqopt {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2600);
  EXPECT_LT(hits, 3400);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SkewedIndexFavorsLowIndexes) {
  Rng rng(23);
  int low = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.SkewedIndex(10, 1.2) < 3) ++low;
  }
  // With theta=1.2 the first three indexes carry well over half the
  // mass.
  EXPECT_GT(low, kTrials / 2);
}

TEST(RngTest, SkewedIndexSingleElement) {
  Rng rng(29);
  EXPECT_EQ(rng.SkewedIndex(1, 2.0), 0u);
}

}  // namespace
}  // namespace sqopt

#include "constraints/rule_derivation.h"

#include <gtest/gtest.h>

#include "sqo/optimizer.h"
#include "query/query_parser.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

using sqopt::testing::ExperimentFixture;

class RuleDerivationTest : public ExperimentFixture {
 protected:
  void SetUp() override {
    ExperimentFixture::SetUp();
    ASSERT_OK_AND_ASSIGN(
        store_, GenerateDatabase(schema_, DbSpec{"RD", 64, 128}, 99));
  }
  std::unique_ptr<ObjectStore> store_;
};

TEST_F(RuleDerivationTest, EveryDerivedRuleHoldsOnTheStore) {
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> rules,
                       DeriveStateRules(*store_));
  EXPECT_FALSE(rules.empty());
  for (const HornClause& rule : rules) {
    EXPECT_TRUE(RuleHoldsOnStore(*store_, rule)) << rule.ToString(schema_);
  }
}

TEST_F(RuleDerivationTest, RediscoversHandWrittenIntraConstraints) {
  // The segment construction makes i2 (frozen food -> weight <= 40)
  // true in every state; the miner must find it (as a value rule or a
  // conditional range with bound <= 40).
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> rules,
                       DeriveStateRules(*store_));
  auto frozen = ParsePredicate(schema_, "cargo.desc = \"frozen food\"");
  ASSERT_TRUE(frozen.ok());
  bool found = false;
  for (const HornClause& rule : rules) {
    if (rule.antecedents().size() != 1) continue;
    if (!(rule.antecedents()[0] == *frozen)) continue;
    const Predicate& c = rule.consequent();
    if (c.is_attr_const() && c.op() == CompareOp::kLe &&
        schema_.attribute(c.lhs()).name == "weight" &&
        c.rhs_value().Compare(Value::Int(40)).value_or(1) <= 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found)
      << "miner failed to rediscover frozen-food weight bound";
}

TEST_F(RuleDerivationTest, GlobalRangeRulesHaveEmptyAntecedents) {
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> rules,
                       DeriveStateRules(*store_));
  int range_rules = 0;
  for (const HornClause& rule : rules) {
    if (rule.antecedents().empty()) {
      ++range_rules;
      const Predicate& c = rule.consequent();
      EXPECT_TRUE(c.op() == CompareOp::kGe || c.op() == CompareOp::kLe);
    }
  }
  EXPECT_GT(range_rules, 0);
}

TEST_F(RuleDerivationTest, SupportThresholdFiltersSmallGroups) {
  RuleDerivationOptions strict;
  strict.min_support = 1000000;  // nothing qualifies
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> rules,
                       DeriveStateRules(*store_, strict));
  // Range rules are also gated on extent size >= min_support.
  EXPECT_TRUE(rules.empty());
}

TEST_F(RuleDerivationTest, CategoriesCanBeDisabled) {
  RuleDerivationOptions none;
  none.derive_value_rules = false;
  none.derive_range_rules = false;
  none.derive_conditional_ranges = false;
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> rules,
                       DeriveStateRules(*store_, none));
  EXPECT_TRUE(rules.empty());
}

TEST_F(RuleDerivationTest, DerivationIsDeterministic) {
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> a,
                       DeriveStateRules(*store_));
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> b,
                       DeriveStateRules(*store_));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].StructurallyEquals(b[i]));
    EXPECT_EQ(a[i].label(), b[i].label());
  }
}

TEST_F(RuleDerivationTest, MinedRulesDriveTheOptimizer) {
  // Fresh catalog containing ONLY mined rules: the optimizer must be
  // able to fire them like any integrity constraint (Siegel's point).
  ConstraintCatalog catalog(&schema_);
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> rules,
                       DeriveStateRules(*store_));
  size_t added = 0;
  for (HornClause& rule : rules) {
    if (catalog.AddConstraint(std::move(rule)).ok()) ++added;
  }
  ASSERT_GT(added, 0u);
  AccessStats access(schema_.num_classes());
  ASSERT_OK(catalog.Precompile(&access));

  ASSERT_OK_AND_ASSIGN(
      Query query,
      ParseQuery(schema_,
                 "{cargo.code} {} {cargo.desc = \"frozen food\"} {} "
                 "{cargo}"));
  SemanticOptimizer optimizer(&schema_, &catalog, nullptr);
  ASSERT_OK_AND_ASSIGN(OptimizeResult result, optimizer.Optimize(query));
  EXPECT_GT(result.report.num_firings, 0u);
}

TEST_F(RuleDerivationTest, RuleHoldsDetectsViolations) {
  // Hand-build a rule that is false on the data: frozen food implies
  // weight <= 0.
  auto frozen = ParsePredicate(schema_, "cargo.desc = \"frozen food\"");
  auto bogus = ParsePredicate(schema_, "cargo.weight <= 0");
  ASSERT_TRUE(frozen.ok() && bogus.ok());
  HornClause lie("lie", {*frozen}, *bogus);
  EXPECT_FALSE(RuleHoldsOnStore(*store_, lie));
}

}  // namespace
}  // namespace sqopt

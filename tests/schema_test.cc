#include "catalog/schema.h"

#include <gtest/gtest.h>

#include "catalog/schema_builder.h"
#include "tests/test_util.h"
#include "workload/example_schema.h"

namespace sqopt {
namespace {

Schema MakeSmall() {
  SchemaBuilder b;
  b.AddClass("person")
      .Attr("name", ValueType::kString, /*indexed=*/true)
      .Attr("age", ValueType::kInt);
  b.AddClass("student").Parent("person").Attr("gpa", ValueType::kDouble);
  b.AddClass("course").Attr("title", ValueType::kString);
  b.AddRelationship("enrolled", "student", "course");
  auto result = b.Build();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(SchemaTest, FindClassAndRelationship) {
  Schema s = MakeSmall();
  EXPECT_NE(s.FindClass("person"), kInvalidClass);
  EXPECT_NE(s.FindClass("student"), kInvalidClass);
  EXPECT_EQ(s.FindClass("nope"), kInvalidClass);
  EXPECT_NE(s.FindRelationship("enrolled"), kInvalidRel);
  EXPECT_EQ(s.FindRelationship("nope"), kInvalidRel);
}

TEST(SchemaTest, AttributeResolution) {
  Schema s = MakeSmall();
  ClassId person = s.FindClass("person");
  AttrRef name = s.FindAttribute(person, "name");
  ASSERT_TRUE(name.valid());
  EXPECT_EQ(s.attribute(name).name, "name");
  EXPECT_TRUE(s.attribute(name).indexed);
  EXPECT_FALSE(s.FindAttribute(person, "gpa").valid());
}

TEST(SchemaTest, InheritedAttributeResolvesOnSubclass) {
  Schema s = MakeSmall();
  ClassId student = s.FindClass("student");
  AttrRef name = s.FindAttribute(student, "name");
  ASSERT_TRUE(name.valid());
  // Identity stays on the queried class.
  EXPECT_EQ(name.class_id, student);
  EXPECT_EQ(s.attribute(name).name, "name");
  EXPECT_EQ(s.AttrRefName(name), "student.name");
}

TEST(SchemaTest, ResolveQualified) {
  Schema s = MakeSmall();
  auto ok = s.ResolveQualified("student.gpa");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(s.AttrRefName(*ok), "student.gpa");
  EXPECT_FALSE(s.ResolveQualified("student").ok());
  EXPECT_FALSE(s.ResolveQualified("ghost.x").ok());
  EXPECT_FALSE(s.ResolveQualified("student.ghost").ok());
}

TEST(SchemaTest, LayoutPutsInheritedFirst) {
  Schema s = MakeSmall();
  ClassId student = s.FindClass("student");
  std::vector<AttrId> layout = s.LayoutOf(student);
  ASSERT_EQ(layout.size(), 3u);
  EXPECT_EQ(s.attribute(AttrRef{student, layout[0]}).name, "name");
  EXPECT_EQ(s.attribute(AttrRef{student, layout[1]}).name, "age");
  EXPECT_EQ(s.attribute(AttrRef{student, layout[2]}).name, "gpa");
}

TEST(SchemaTest, SubclassesAndKindOf) {
  Schema s = MakeSmall();
  ClassId person = s.FindClass("person");
  ClassId student = s.FindClass("student");
  std::vector<ClassId> subs = s.SubclassesOf(person);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], student);
  EXPECT_TRUE(s.IsKindOf(student, person));
  EXPECT_FALSE(s.IsKindOf(person, student));
  EXPECT_TRUE(s.IsKindOf(person, person));
}

TEST(SchemaTest, RelationshipLookupsAndLinks) {
  Schema s = MakeSmall();
  ClassId student = s.FindClass("student");
  ClassId course = s.FindClass("course");
  ClassId person = s.FindClass("person");
  EXPECT_TRUE(s.AreLinked(student, course));
  EXPECT_TRUE(s.AreLinked(course, student));
  EXPECT_FALSE(s.AreLinked(person, course));
  EXPECT_EQ(s.RelationshipsOf(student).size(), 1u);
  EXPECT_EQ(s.RelationshipsOf(person).size(), 0u);
}

TEST(SchemaBuilderTest, RejectsDuplicateClass) {
  SchemaBuilder b;
  b.AddClass("x");
  b.AddClass("x");
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, RejectsUnknownParent) {
  SchemaBuilder b;
  b.AddClass("x").Parent("ghost");
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, RejectsSelfParent) {
  SchemaBuilder b;
  b.AddClass("x").Parent("x");
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, RejectsInheritanceCycle) {
  SchemaBuilder b;
  b.AddClass("a").Parent("b");
  b.AddClass("b").Parent("a");
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, RejectsDuplicateAttribute) {
  SchemaBuilder b;
  b.AddClass("x").Attr("a", ValueType::kInt).Attr("a", ValueType::kInt);
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, RejectsShadowedAttribute) {
  SchemaBuilder b;
  b.AddClass("base").Attr("a", ValueType::kInt);
  b.AddClass("derived").Parent("base").Attr("a", ValueType::kInt);
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, RejectsRelationshipToUnknownClass) {
  SchemaBuilder b;
  b.AddClass("x");
  b.AddRelationship("r", "x", "ghost");
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, RejectsDuplicateRelationship) {
  SchemaBuilder b;
  b.AddClass("x");
  b.AddClass("y");
  b.AddRelationship("r", "x", "y");
  b.AddRelationship("r", "y", "x");
  EXPECT_FALSE(b.Build().ok());
}

TEST(Figure21SchemaTest, MatchesPaper) {
  auto schema = BuildFigure21Schema();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_classes(), 9u);
  EXPECT_EQ(schema->num_relationships(), 5u);
  // Inheritance: driver and manager under employee, supervisor under
  // driver.
  ClassId employee = schema->FindClass("employee");
  ClassId supervisor = schema->FindClass("supervisor");
  EXPECT_TRUE(schema->IsKindOf(supervisor, employee));
  // supervisor inherits licenseClass through driver.
  EXPECT_TRUE(schema->FindAttribute(supervisor, "licenseClass").valid());
  // vehicle# resolves.
  EXPECT_TRUE(schema->ResolveQualified("vehicle.vehicle#").ok());
}

}  // namespace
}  // namespace sqopt

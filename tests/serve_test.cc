// Tests for the concurrent batch-serving layer: ExecuteBatch outcome
// ordering and equivalence with ad-hoc Execute, per-query error
// isolation, aggregate stats, worker-pool reuse/resizing, and — run
// under -fsanitize=thread — a concurrent mix of Execute, ExecuteBatch,
// and Load reloads against one shared engine.
#include "api/serve.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "common/worker_pool.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

constexpr uint64_t kSeed = 20260728;
const DbSpec kSpec{"serve_test", 104, 154};

const char* kJoinQuery =
    "{cargo.code} {} {cargo.desc = \"frozen food\", "
    "supplier.region = \"west\"} {supplies} {supplier, cargo}";
const char* kSingleClassQuery =
    "{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}";
const char* kContradictionQuery =
    "{cargo.code} {} {vehicle.desc = \"refrigerated truck\", "
    "cargo.desc = \"fuel\"} {collects} {cargo, vehicle}";

Engine OpenLoadedEngine(EngineOptions options = {}) {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment(),
                             std::move(options));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  Engine engine = std::move(opened).value();
  Status s = engine.Load(DataSource::Generated(kSpec, kSeed));
  EXPECT_TRUE(s.ok()) << s.ToString();
  return engine;
}

std::vector<std::string> MixedBatch(size_t copies) {
  std::vector<std::string> batch;
  for (size_t i = 0; i < copies; ++i) {
    batch.push_back(kJoinQuery);
    batch.push_back(kSingleClassQuery);
    batch.push_back(kContradictionQuery);
  }
  return batch;
}

TEST(WorkerPoolTest, ResolveThreadsClampsAndPassesThrough) {
  EXPECT_EQ(WorkerPool::ResolveThreads(3), 3);
  EXPECT_GE(WorkerPool::ResolveThreads(0), 1);
  EXPECT_LE(WorkerPool::ResolveThreads(0), 16);
}

TEST(WorkerPoolTest, RunsEverySubmittedTask) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  int remaining = 100;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ExecuteBatchTest, MatchesIndividualExecutes) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(QueryOutcome join, engine.Execute(kJoinQuery));
  ASSERT_OK_AND_ASSIGN(QueryOutcome single,
                       engine.Execute(kSingleClassQuery));

  std::vector<std::string> batch = MixedBatch(/*copies=*/4);
  ASSERT_OK_AND_ASSIGN(BatchOutcome out, engine.ExecuteBatch(batch));
  ASSERT_EQ(out.results.size(), batch.size());
  EXPECT_EQ(out.stats.queries, batch.size());
  EXPECT_EQ(out.stats.succeeded, batch.size());
  EXPECT_EQ(out.stats.failed, 0u);

  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(out.results[i].ok()) << out.results[i].status().ToString();
    const QueryOutcome& got = *out.results[i];
    if (batch[i] == kJoinQuery) {
      EXPECT_TRUE(got.rows.SameRows(join.rows)) << "slot " << i;
    } else if (batch[i] == kSingleClassQuery) {
      EXPECT_TRUE(got.rows.SameRows(single.rows)) << "slot " << i;
    } else {
      EXPECT_TRUE(got.answered_without_database) << "slot " << i;
    }
  }
  EXPECT_EQ(engine.stats().batches_served, 1u);
}

TEST(ExecuteBatchTest, WarmCacheServesHits) {
  Engine engine = OpenLoadedEngine();
  std::vector<std::string> batch = MixedBatch(/*copies=*/8);
  // Single-threaded cold pass: with concurrent workers, several could
  // miss the same key at once and the miss count would be racy.
  ServeOptions cold_serve;
  cold_serve.threads = 1;
  ASSERT_OK_AND_ASSIGN(BatchOutcome cold,
                       engine.ExecuteBatch(batch, cold_serve));
  // 3 distinct queries -> exactly 3 misses, everything else hits.
  EXPECT_EQ(cold.stats.cache_misses, 3u);
  EXPECT_EQ(cold.stats.cache_hits, batch.size() - 3);

  ASSERT_OK_AND_ASSIGN(BatchOutcome warm, engine.ExecuteBatch(batch));
  EXPECT_EQ(warm.stats.cache_hits, batch.size());
  EXPECT_DOUBLE_EQ(warm.stats.cache_hit_rate, 1.0);
}

TEST(ExecuteBatchTest, BadQueryFailsOnlyItsSlot) {
  Engine engine = OpenLoadedEngine();
  std::vector<std::string> batch = {kJoinQuery, "not a query at all",
                                    kSingleClassQuery};
  ASSERT_OK_AND_ASSIGN(BatchOutcome out, engine.ExecuteBatch(batch));
  EXPECT_TRUE(out.results[0].ok());
  EXPECT_FALSE(out.results[1].ok());
  EXPECT_TRUE(out.results[2].ok());
  EXPECT_EQ(out.stats.succeeded, 2u);
  EXPECT_EQ(out.stats.failed, 1u);
}

TEST(ExecuteBatchTest, EmptyBatchAndNoDataEdgeCases) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(BatchOutcome empty,
                       engine.ExecuteBatch(std::span<const std::string>{}));
  EXPECT_TRUE(empty.results.empty());
  EXPECT_EQ(empty.stats.queries, 0u);

  ASSERT_OK_AND_ASSIGN(
      Engine unloaded, Engine::Open(SchemaSource::Experiment(),
                                    ConstraintSource::Experiment()));
  std::vector<std::string> batch = {kJoinQuery};
  auto result = unloaded.ExecuteBatch(batch);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExecuteBatchTest, StatsAreCoherent) {
  Engine engine = OpenLoadedEngine();
  std::vector<std::string> batch = MixedBatch(/*copies=*/16);
  ServeOptions serve;
  serve.threads = 4;
  ASSERT_OK_AND_ASSIGN(BatchOutcome out, engine.ExecuteBatch(batch, serve));
  EXPECT_EQ(out.stats.threads, 4);
  EXPECT_GT(out.stats.wall_micros, 0u);
  EXPECT_GT(out.stats.qps, 0.0);
  EXPECT_LE(out.stats.p50_micros, out.stats.p95_micros);
}

TEST(ExecuteBatchTest, PoolIsReusedAndResizable) {
  Engine engine = OpenLoadedEngine();
  std::vector<std::string> batch = MixedBatch(/*copies=*/2);
  ServeOptions one;
  one.threads = 1;
  ServeOptions four;
  four.threads = 4;
  ASSERT_OK_AND_ASSIGN(BatchOutcome a, engine.ExecuteBatch(batch, one));
  ASSERT_OK_AND_ASSIGN(BatchOutcome b, engine.ExecuteBatch(batch, four));
  ASSERT_OK_AND_ASSIGN(BatchOutcome c, engine.ExecuteBatch(batch, four));
  EXPECT_EQ(a.stats.threads, 1);
  EXPECT_EQ(b.stats.threads, 4);
  EXPECT_EQ(c.stats.threads, 4);
  for (const auto& out : {a, b, c}) {
    EXPECT_EQ(out.stats.succeeded, batch.size());
  }
  EXPECT_EQ(engine.stats().batches_served, 3u);
}

// The end-to-end concurrency claim, checked under TSan in CI: ad-hoc
// Execute, batch serving, and data reloads all run against one engine
// at once. Rows must always be internally consistent — every query
// sees either the old or the new store, never a mix, and never a
// use-after-free of a dropped store.
TEST(ServeConcurrencyTest, ExecuteBatchAndReloadRaceFree) {
  Engine engine = OpenLoadedEngine();
  // The two stores differ in size, so row counts identify which store
  // served a query.
  ASSERT_OK_AND_ASSIGN(QueryOutcome store_a,
                       engine.Execute(kSingleClassQuery));
  ASSERT_OK(engine.Load(
      DataSource::Generated(DbSpec{"other", 52, 77}, kSeed + 1)));
  ASSERT_OK_AND_ASSIGN(QueryOutcome store_b,
                       engine.Execute(kSingleClassQuery));
  const size_t rows_a = store_a.rows.rows.size();
  const size_t rows_b = store_b.rows.rows.size();
  ASSERT_NE(rows_a, rows_b);

  std::atomic<int> failures{0};
  auto check_rows = [&](size_t n) {
    if (n != rows_a && n != rows_b) failures.fetch_add(1);
  };

  constexpr int kIterations = 10;
  std::vector<std::thread> threads;
  // Two ad-hoc threads.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations * 3; ++i) {
        auto out = engine.Execute(kSingleClassQuery);
        if (!out.ok()) {
          failures.fetch_add(1);
        } else {
          check_rows(out->rows.rows.size());
        }
      }
    });
  }
  // Two batch threads.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      std::vector<std::string> batch(6, kSingleClassQuery);
      ServeOptions serve;
      serve.threads = 2;
      for (int i = 0; i < kIterations; ++i) {
        auto out = engine.ExecuteBatch(batch, serve);
        if (!out.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (const auto& result : out->results) {
          if (!result.ok()) {
            failures.fetch_add(1);
          } else {
            check_rows(result->rows.rows.size());
          }
        }
      }
    });
  }
  // One reloader thread alternating between the two databases.
  threads.emplace_back([&] {
    for (int i = 0; i < kIterations; ++i) {
      Status s = engine.Load(
          i % 2 == 0
              ? DataSource::Generated(kSpec, kSeed)
              : DataSource::Generated(DbSpec{"other", 52, 77}, kSeed + 1));
      if (!s.ok()) failures.fetch_add(1);
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // After the dust settles the cache serves the final store only.
  ASSERT_OK_AND_ASSIGN(QueryOutcome final_cold,
                       engine.Execute(kSingleClassQuery));
  ASSERT_OK_AND_ASSIGN(QueryOutcome final_warm,
                       engine.Execute(kSingleClassQuery));
  EXPECT_TRUE(final_warm.rows.SameRows(final_cold.rows));
}

// The write-path concurrency claim, checked under TSan in CI: ad-hoc
// Execute, ExecuteBatch, and Apply commits all run against one engine
// at once, and no reader may EVER observe a half-applied batch. The
// writer flips one cargo row between two (desc, weight) states with
// both attributes in a single batch; the torn combinations can only
// exist if snapshot publication is non-atomic, so the detector queries
// must return zero rows on every snapshot.
TEST(ServeConcurrencyTest, ApplyNeverExposesHalfAppliedBatches) {
  Engine engine = OpenLoadedEngine();
  const Schema& schema = engine.schema();
  const ClassId cargo = schema.FindClass("cargo");
  const AttrRef desc = schema.ResolveQualified("cargo.desc").value();
  const AttrRef weight = schema.ResolveQualified("cargo.weight").value();

  // Cargo row 1 is segment 1 ("fuel", weight 41..100, quantity >= 500):
  // none of the flip values below touch any constraint (weights stay
  // >= 41 for i6; no clause mentions "fuel" or "mystery box").
  auto flip = [&](const char* d, int64_t w) {
    MutationBatch batch;
    batch.Update(cargo, 1, desc.attr_id, Value::String(d));
    batch.Update(cargo, 1, weight.attr_id, Value::Int(w));
    return engine.Apply(batch);
  };
  ASSERT_OK(flip("fuel", 60).status());  // pin a known initial state

  // A torn read would pair the NEW desc with the OLD weight or vice
  // versa.
  const char* kTornA =
      "{cargo.code} {} {cargo.desc = \"mystery box\", cargo.weight = 60} "
      "{} {cargo}";
  const char* kTornB =
      "{cargo.code} {} {cargo.desc = \"fuel\", cargo.weight = 90} "
      "{} {cargo}";

  std::atomic<int> failures{0};
  std::atomic<int> torn{0};
  constexpr int kIterations = 30;
  std::vector<std::thread> threads;
  // Two detector threads.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations * 4; ++i) {
        for (const char* q : {kTornA, kTornB}) {
          auto out = engine.Execute(q);
          if (!out.ok()) {
            failures.fetch_add(1);
          } else if (!out->rows.rows.empty()) {
            torn.fetch_add(1);
          }
        }
      }
    });
  }
  // One batch-serving thread mixing real traffic in.
  threads.emplace_back([&] {
    std::vector<std::string> batch = {kSingleClassQuery, kTornA,
                                      kJoinQuery, kTornB};
    ServeOptions serve;
    serve.threads = 2;
    for (int i = 0; i < kIterations; ++i) {
      auto out = engine.ExecuteBatch(batch, serve);
      if (!out.ok()) {
        failures.fetch_add(1);
        continue;
      }
      for (size_t slot : {size_t{1}, size_t{3}}) {
        if (!out->results[slot].ok()) {
          failures.fetch_add(1);
        } else if (!(*out->results[slot]).rows.rows.empty()) {
          torn.fetch_add(1);
        }
      }
    }
  });
  // One writer thread flipping the two-attribute state.
  threads.emplace_back([&] {
    for (int i = 0; i < kIterations * 2; ++i) {
      auto out = i % 2 == 0 ? flip("mystery box", 90) : flip("fuel", 60);
      if (!out.ok()) failures.fetch_add(1);
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(torn.load(), 0) << "a reader observed a half-applied batch";

  // Small two-row batches never cross the replan threshold on a
  // 104-row class, so this mixed workload must have been served from
  // the cache while the snapshots churned underneath it.
  EXPECT_GT(engine.plan_cache_stats().hits, 0u);
  EXPECT_GT(engine.stats().mutation_batches_applied,
            static_cast<uint64_t>(kIterations));
}

}  // namespace
}  // namespace sqopt

// Integration tests for the network serving layer (src/server/): wire
// protocol roundtrips over real loopback sockets, malformed-frame
// handling (bad CRC recoverable, oversized length fatal), per-request
// deadlines producing typed kTimeout, admission-control shedding with
// typed kOverloaded under saturation, graceful drain completing
// in-flight work, idle-connection reaping, and concurrent clients
// sharing one engine plan cache. Runs under -fsanitize=thread in CI.
#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "persist/serde.h"
#include "server/client.h"
#include "server/load_runner.h"
#include "server/wire.h"
#include "shard/sharded_engine.h"
#include "tests/test_util.h"
#include "workload/dbgen.h"
#include "workload/query_pool.h"

namespace sqopt::server {
namespace {

constexpr uint64_t kSeed = 20260807;
const DbSpec kSpec{"server_test", 104, 154};

const char* kSingleClassQuery =
    "{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}";
const char* kContradictionQuery =
    "{cargo.code} {} {vehicle.desc = \"refrigerated truck\", "
    "cargo.desc = \"fuel\"} {collects} {cargo, vehicle}";

Engine OpenLoadedEngine() {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  Engine engine = std::move(opened).value();
  Status s = engine.Load(DataSource::Generated(kSpec, kSeed));
  EXPECT_TRUE(s.ok()) << s.ToString();
  return engine;
}

std::unique_ptr<Server> StartServer(EngineInterface* engine,
                                    ServerOptions options = {}) {
  options.port = 0;
  auto started = Server::Start(engine, options);
  EXPECT_TRUE(started.ok()) << started.status().ToString();
  return std::move(started).value();
}

// --- Wire-level units (no sockets) ---------------------------------

TEST(WireTest, RequestRoundtrip) {
  Request request;
  request.type = RequestType::kQuery;
  request.deadline_ms = 1234;
  request.query_text = kSingleClassQuery;
  std::string frame = EncodeRequest(request);

  FrameReader reader;
  reader.Append(frame.data(), frame.size());
  std::string payload;
  ASSERT_EQ(reader.Next(&payload), FrameReader::Outcome::kFrame);
  ASSERT_OK_AND_ASSIGN(Request decoded, DecodeRequest(payload));
  EXPECT_EQ(decoded.type, RequestType::kQuery);
  EXPECT_EQ(decoded.deadline_ms, 1234u);
  EXPECT_EQ(decoded.query_text, request.query_text);
  EXPECT_EQ(reader.Next(&payload), FrameReader::Outcome::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireTest, ResponseRoundtripCarriesRowsAndFlags) {
  Response response;
  response.type = RequestType::kQuery;
  response.code = StatusCode::kOk;
  response.plan_cache_hit = true;
  response.answered_without_database = false;
  response.exec_micros = 77;
  response.rows = {{Value::Int(1), Value::String("a")}, {Value::Int(2)}};
  std::string frame = EncodeResponse(response);

  FrameReader reader;
  reader.Append(frame.data(), frame.size());
  std::string payload;
  ASSERT_EQ(reader.Next(&payload), FrameReader::Outcome::kFrame);
  ASSERT_OK_AND_ASSIGN(Response decoded, DecodeResponse(payload));
  EXPECT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.plan_cache_hit);
  EXPECT_FALSE(decoded.answered_without_database);
  EXPECT_EQ(decoded.exec_micros, 77u);
  ASSERT_EQ(decoded.rows.size(), 2u);
  ASSERT_EQ(decoded.rows[0].size(), 2u);
  EXPECT_EQ(decoded.rows[0][1], Value::String("a"));
}

TEST(WireTest, FrameReaderHandlesFragmentationAndPipelining) {
  std::string frame = EncodeFrame("hello");
  std::string two = frame + frame;
  FrameReader reader;
  std::string payload;
  // Feed one byte at a time: every prefix is kNeedMore until complete.
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.Append(&two[i], 1);
    EXPECT_EQ(reader.Next(&payload), FrameReader::Outcome::kNeedMore);
  }
  reader.Append(&two[frame.size() - 1], two.size() - frame.size() + 1);
  ASSERT_EQ(reader.Next(&payload), FrameReader::Outcome::kFrame);
  EXPECT_EQ(payload, "hello");
  ASSERT_EQ(reader.Next(&payload), FrameReader::Outcome::kFrame);
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(reader.Next(&payload), FrameReader::Outcome::kNeedMore);
}

TEST(WireTest, BadCrcConsumesFrameAndStaysInSync) {
  std::string bad = EncodeFrame("payload-a");
  bad[9] ^= 0x40;  // flip a payload bit; header length stays valid
  std::string good = EncodeFrame("payload-b");
  FrameReader reader;
  reader.Append(bad.data(), bad.size());
  reader.Append(good.data(), good.size());
  std::string payload;
  EXPECT_EQ(reader.Next(&payload), FrameReader::Outcome::kBadCrc);
  ASSERT_EQ(reader.Next(&payload), FrameReader::Outcome::kFrame);
  EXPECT_EQ(payload, "payload-b");
}

TEST(WireTest, OversizedLengthIsFatal) {
  persist::ByteWriter writer;
  writer.PutU32(kMaxFramePayload + 1);
  writer.PutU32(0);
  std::string bytes = std::move(writer).Take();
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  std::string payload;
  EXPECT_EQ(reader.Next(&payload), FrameReader::Outcome::kTooLarge);
}

// --- Socket integration --------------------------------------------

TEST(ServerTest, QueryRoundtripMatchesDirectExecute) {
  Engine engine = OpenLoadedEngine();
  ASSERT_OK_AND_ASSIGN(QueryOutcome direct,
                       engine.Execute(kSingleClassQuery));
  std::unique_ptr<Server> server = StartServer(&engine);

  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(Response response, client.Query(kSingleClassQuery));
  ASSERT_TRUE(response.ok()) << response.message;
  ASSERT_EQ(response.rows.size(), direct.rows.rows.size());
  for (size_t i = 0; i < response.rows.size(); ++i) {
    EXPECT_EQ(response.rows[i], direct.rows.rows[i]) << "row " << i;
  }

  // A semantically-refuted query comes back answered_without_database.
  ASSERT_OK_AND_ASSIGN(Response refuted, client.Query(kContradictionQuery));
  ASSERT_TRUE(refuted.ok()) << refuted.message;
  EXPECT_TRUE(refuted.answered_without_database);
  EXPECT_TRUE(refuted.rows.empty());

  EXPECT_OK(client.Ping());
  server->Shutdown();
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_GE(stats.queries_ok, 2u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ServerTest, StatsEndpointServesMetricsText) {
  Engine engine = OpenLoadedEngine();
  std::unique_ptr<Server> server = StartServer(&engine);
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(Response queried, client.Query(kSingleClassQuery));
  ASSERT_TRUE(queried.ok());
  ASSERT_OK_AND_ASSIGN(std::string text, client.Stats());
  // ServerStats, EngineStats, and plan-cache counters all present.
  EXPECT_NE(text.find("server_requests_received "), std::string::npos);
  EXPECT_NE(text.find("server_queries_ok 1"), std::string::npos);
  EXPECT_NE(text.find("engine_queries_executed "), std::string::npos);
  EXPECT_NE(text.find("plan_cache_"), std::string::npos);
}

TEST(ServerTest, StatsOverShardedBackendReportFleetTotals) {
  // The server takes any EngineInterface; behind a ShardedEngine the
  // STATS endpoint must serve FLEET totals (per-shard counters summed,
  // coordinator events counted once), not one shard's view.
  shard::ShardOptions shard_options;
  shard_options.shards = 4;
  auto opened =
      shard::ShardedEngine::Open(SchemaSource::Experiment(),
                                 ConstraintSource::Experiment(),
                                 shard_options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  shard::ShardedEngine fleet = std::move(*opened);
  ASSERT_OK(fleet.Load(DataSource::Generated(kSpec, kSeed)));
  const Schema& schema = fleet.schema();
  const ClassId supplier = schema.FindClass("supplier");
  // Fixture rows round-robin segments, so rows 0 and 3 live on
  // different shards at 4 shards — the batch below really fans out.
  ASSERT_NE(fleet.ShardOfRow(supplier, 0), fleet.ShardOfRow(supplier, 3));

  // One committed batch whose two inserts land on two shards: each
  // shard applies one op, so only the summed view reports 2.
  MutationBatch batch;
  ASSERT_OK_AND_ASSIGN(
      Object fresh0, MakeSegmentObject(schema, supplier, /*segment=*/0,
                                       /*ordinal=*/9000));
  ASSERT_OK_AND_ASSIGN(
      Object fresh3, MakeSegmentObject(schema, supplier, /*segment=*/3,
                                       /*ordinal=*/9001));
  batch.Insert(supplier, std::move(fresh0));
  batch.Insert(supplier, std::move(fresh3));
  ASSERT_OK(fleet.Apply(batch).status());

  std::unique_ptr<Server> server = StartServer(&fleet);
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(Response queried, client.Query(kSingleClassQuery));
  ASSERT_TRUE(queried.ok()) << queried.message;
  ASSERT_OK_AND_ASSIGN(Response refuted, client.Query(kContradictionQuery));
  ASSERT_TRUE(refuted.ok()) << refuted.message;
  EXPECT_TRUE(refuted.answered_without_database);

  const EngineStats totals = fleet.stats();
  EXPECT_EQ(totals.mutation_batches_applied, 1u);
  EXPECT_EQ(totals.mutation_ops_applied, 2u);
  EXPECT_GE(totals.contradictions, 1u);

  ASSERT_OK_AND_ASSIGN(std::string text, client.Stats());
  auto line = [](const char* name, uint64_t value) {
    return std::string(name) + " " + std::to_string(value);
  };
  EXPECT_NE(text.find("server_queries_ok 2"), std::string::npos) << text;
  EXPECT_NE(text.find(line("engine_queries_executed",
                           totals.queries_executed)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(line("engine_contradictions", totals.contradictions)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("engine_mutation_batches_applied 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("engine_mutation_ops_applied 2"), std::string::npos)
      << text;
  // Plan-cache lines come from the planning head's shared cache.
  EXPECT_NE(text.find("plan_cache_"), std::string::npos) << text;
}

TEST(ServerTest, BadCrcGetsTypedErrorAndConnectionSurvives) {
  Engine engine = OpenLoadedEngine();
  std::unique_ptr<Server> server = StartServer(&engine);
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server->port()));

  Request request;
  request.query_text = kSingleClassQuery;
  std::string frame = EncodeRequest(request);
  frame[frame.size() - 1] ^= 0x01;  // corrupt the payload, not the header
  ASSERT_OK(client.SendRaw(frame));
  ASSERT_OK_AND_ASSIGN(Response error, client.ReceiveResponse());
  EXPECT_EQ(error.code, StatusCode::kCorruption);

  // Same connection still works: the frame boundary was known.
  ASSERT_OK_AND_ASSIGN(Response after, client.Query(kSingleClassQuery));
  EXPECT_TRUE(after.ok()) << after.message;
  EXPECT_GE(server->stats().protocol_errors, 1u);
}

TEST(ServerTest, OversizedFrameClosesConnectionServerSurvives) {
  Engine engine = OpenLoadedEngine();
  std::unique_ptr<Server> server = StartServer(&engine);
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server->port()));

  persist::ByteWriter writer;
  writer.PutU32(kMaxFramePayload + 1);  // untrustworthy length
  writer.PutU32(0xdeadbeef);
  ASSERT_OK(client.SendRaw(std::move(writer).Take()));
  ASSERT_OK_AND_ASSIGN(Response error, client.ReceiveResponse());
  EXPECT_EQ(error.code, StatusCode::kCorruption);
  // The connection is closed after the typed error; the next read
  // fails at the transport level.
  EXPECT_FALSE(client.ReceiveResponse().ok());

  // The server itself is fine — fresh connections work.
  ASSERT_OK_AND_ASSIGN(Client fresh,
                       Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(Response after, fresh.Query(kSingleClassQuery));
  EXPECT_TRUE(after.ok()) << after.message;
  EXPECT_GE(server->stats().protocol_errors, 1u);
}

TEST(ServerTest, TruncatedFrameAtCloseDoesNotKillServer) {
  Engine engine = OpenLoadedEngine();
  std::unique_ptr<Server> server = StartServer(&engine);
  {
    ASSERT_OK_AND_ASSIGN(Client client,
                         Client::Connect("127.0.0.1", server->port()));
    std::string frame = EncodeRequest(Request{});
    ASSERT_OK(client.SendRaw(frame.substr(0, frame.size() / 2)));
    client.Close();  // peer truncates mid-frame
  }
  ASSERT_OK_AND_ASSIGN(Client fresh,
                       Client::Connect("127.0.0.1", server->port()));
  EXPECT_OK(fresh.Ping());
}

TEST(ServerTest, ExpiredDeadlineAnswersTypedTimeout) {
  Engine engine = OpenLoadedEngine();
  ServerOptions options;
  options.threads = 1;
  options.execute_delay_ms = 300;  // pin the single worker
  std::unique_ptr<Server> server = StartServer(&engine, options);

  // First request occupies the worker for ~300ms; the second carries a
  // 50ms deadline and must expire in the queue.
  ASSERT_OK_AND_ASSIGN(Client blocker,
                       Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK(blocker.SendRaw(EncodeRequest(
      Request{RequestType::kQuery, 5000, kSingleClassQuery})));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ASSERT_OK_AND_ASSIGN(Client hurried,
                       Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(Response late, hurried.Query(kSingleClassQuery, 50));
  EXPECT_EQ(late.code, StatusCode::kTimeout) << late.message;

  ASSERT_OK_AND_ASSIGN(Response blocked, blocker.ReceiveResponse());
  EXPECT_TRUE(blocked.ok()) << blocked.message;
  server->Shutdown();
  EXPECT_GE(server->stats().timed_out, 1u);
}

TEST(ServerTest, StatsUnderSaturationHonorsDeadlineLikeEveryType) {
  // v2 generalized deadline_ms to every request type: a kStats queued
  // behind a pinned worker expires with the same typed kTimeout a
  // query would, instead of the old bypass-the-clock special case.
  Engine engine = OpenLoadedEngine();
  ServerOptions options;
  options.threads = 1;
  options.execute_delay_ms = 300;  // pin the single worker
  std::unique_ptr<Server> server = StartServer(&engine, options);

  ASSERT_OK_AND_ASSIGN(Client blocker,
                       Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK(blocker.SendRaw(EncodeRequest(
      Request{RequestType::kQuery, 5000, kSingleClassQuery})));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ASSERT_OK_AND_ASSIGN(Client hurried,
                       Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(Response hello, hurried.Hello());
  ASSERT_TRUE(hello.ok()) << hello.message;
  Request stats;
  stats.type = RequestType::kStats;
  stats.deadline_ms = 50;
  ASSERT_OK(hurried.SendRaw(EncodeRequest(stats, hurried.protocol())));
  ASSERT_OK_AND_ASSIGN(Response late, hurried.ReceiveResponse());
  EXPECT_EQ(late.code, StatusCode::kTimeout) << late.message;
  EXPECT_EQ(late.type, RequestType::kStats);

  ASSERT_OK_AND_ASSIGN(Response blocked, blocker.ReceiveResponse());
  EXPECT_TRUE(blocked.ok()) << blocked.message;
  server->Shutdown();
  EXPECT_GE(server->stats().timed_out, 1u);
}

TEST(ServerTest, SaturationShedsTypedOverloadedWithBoundedQueue) {
  Engine engine = OpenLoadedEngine();
  ServerOptions options;
  options.threads = 1;
  options.max_queue = 4;
  options.execute_delay_ms = 50;
  options.default_deadline_ms = 30000;  // shed via admission, not deadline
  std::unique_ptr<Server> server = StartServer(&engine, options);

  // Fire 24 pipelined requests from each of 4 clients without reading
  // responses: capacity is ~20 qps, so the 4-deep queue must reject.
  constexpr int kClients = 4;
  constexpr int kPerClient = 24;
  std::vector<Client> clients;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_OK_AND_ASSIGN(Client client,
                         Client::Connect("127.0.0.1", server->port(),
                                         /*timeout_ms=*/30000));
    clients.push_back(std::move(client));
  }
  const std::string frame = EncodeRequest(
      Request{RequestType::kQuery, 0, kSingleClassQuery});
  for (Client& client : clients) {
    for (int i = 0; i < kPerClient; ++i) ASSERT_OK(client.SendRaw(frame));
  }

  uint64_t ok = 0, overloaded = 0;
  for (Client& client : clients) {
    for (int i = 0; i < kPerClient; ++i) {
      ASSERT_OK_AND_ASSIGN(Response response, client.ReceiveResponse());
      if (response.ok()) {
        ++ok;
      } else {
        ASSERT_EQ(response.code, StatusCode::kOverloaded)
            << response.message;
        ++overloaded;
      }
    }
  }
  EXPECT_EQ(ok + overloaded,
            static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_GT(overloaded, 0u);
  EXPECT_GT(ok, 0u);  // admitted requests still completed

  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.rejected_overloaded, overloaded);
  EXPECT_LE(stats.queue_depth_hwm, options.max_queue);  // bounded memory
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ServerTest, GracefulDrainFinishesInFlightWork) {
  Engine engine = OpenLoadedEngine();
  ServerOptions options;
  options.threads = 2;
  options.execute_delay_ms = 100;
  std::unique_ptr<Server> server = StartServer(&engine, options);

  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server->port()));
  // Three pipelined requests in flight, then drain mid-stream.
  const std::string frame = EncodeRequest(
      Request{RequestType::kQuery, 0, kSingleClassQuery});
  for (int i = 0; i < 3; ++i) ASSERT_OK(client.SendRaw(frame));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server->RequestDrain();

  // Every already-admitted request is answered before the close.
  int answered = 0;
  for (int i = 0; i < 3; ++i) {
    auto response = client.ReceiveResponse();
    if (!response.ok()) break;  // drain closed after flushing
    EXPECT_TRUE(response->ok() ||
                response->code == StatusCode::kOverloaded)
        << response->message;
    ++answered;
  }
  EXPECT_GE(answered, 1);
  server->Await();

  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.connections_active, 0u);
  // No new connections once drained: the listen socket is closed.
  auto refused = Client::Connect("127.0.0.1", server->port(), 500);
  EXPECT_FALSE(refused.ok() && refused->Ping().ok());
}

TEST(ServerTest, IdleConnectionsAreReaped) {
  Engine engine = OpenLoadedEngine();
  ServerOptions options;
  options.idle_timeout_ms = 100;
  std::unique_ptr<Server> server = StartServer(&engine, options);
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server->port()));
  EXPECT_OK(client.Ping());
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server->stats().connections_reaped_idle == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server->stats().connections_reaped_idle, 1u);
  EXPECT_EQ(server->stats().connections_active, 0u);
}

TEST(ServerTest, ConcurrentClientsShareThePlanCache) {
  Engine engine = OpenLoadedEngine();
  std::unique_ptr<Server> server = StartServer(&engine);
  const std::vector<std::string> pool = ExperimentQueryPool();

  constexpr int kThreads = 6;
  constexpr int kPerThread = 20;
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> cache_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) return;
      for (int i = 0; i < kPerThread; ++i) {
        auto response =
            client->Query(pool[static_cast<size_t>(t + i) % pool.size()]);
        if (response.ok() && response->ok()) {
          ok.fetch_add(1);
          if (response->plan_cache_hit) cache_hits.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(ok.load(), static_cast<uint64_t>(kThreads * kPerThread));
  // 6 distinct templates, 120 requests: almost everything is a hit on
  // the one shared cache.
  EXPECT_GE(cache_hits.load(),
            static_cast<uint64_t>(kThreads * kPerThread) -
                2 * pool.size());
  EXPECT_GE(engine.plan_cache_stats().hits,
            cache_hits.load());  // server hits are engine hits
  server->Shutdown();
  EXPECT_EQ(server->stats().protocol_errors, 0u);
}

TEST(ServerTest, StartValidatesArguments) {
  Engine engine = OpenLoadedEngine();
  EXPECT_FALSE(Server::Start(nullptr, {}).ok());
  ServerOptions bad;
  bad.threads = 0;
  EXPECT_FALSE(Server::Start(&engine, bad).ok());

  // An engine with no data loaded is refused up front.
  auto empty = Engine::Open(SchemaSource::Experiment(),
                            ConstraintSource::Experiment());
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(Server::Start(&*empty, {}).ok());
}

}  // namespace
}  // namespace sqopt::server

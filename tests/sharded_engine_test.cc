// Differential gauntlet for the scatter-gather ShardedEngine: at every
// fleet size the coordinator must be bit-identical to one Engine over
// the unpartitioned store — same rows, same ROW ORDER, same
// ExecutionMeter work counters — across cold and plan-cached reads,
// committed mutation batches, group commits, cross-shard query mixes,
// reloads, and a Save/Open recovery cycle. Any divergence pinpoints a
// bug in partitioning, the scatter, the provenance merge, or write
// routing.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "api/engine.h"
#include "query/query_printer.h"
#include "shard/sharded_engine.h"
#include "tests/test_util.h"
#include "workload/dbgen.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

namespace sqopt {
namespace {

using shard::ShardOptions;
using shard::ShardedEngine;

const DbSpec kSpec{"SHARD_DIFF", 24, 48};
constexpr uint64_t kDataSeed = 20260807;

Result<Engine> OpenSingle() {
  return Engine::Open(SchemaSource::Experiment(),
                      ConstraintSource::Experiment());
}

Result<ShardedEngine> OpenFleet(int shards) {
  ShardOptions options;
  options.shards = shards;
  return ShardedEngine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment(), options);
}

// The differential workload: every simple path of length 1..3, a
// generated sample per path — full scans, index probes, and
// multi-class pointer chases whose results mix rows from every shard.
std::vector<std::string> WorkloadTexts(const Schema& schema, uint64_t seed,
                                       int per_batch) {
  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema, 1, 3);
  QueryGenerator gen(&schema, seed);
  auto queries = gen.Sample(paths, per_batch);
  EXPECT_TRUE(queries.ok()) << queries.status().ToString();
  std::vector<std::string> texts;
  for (const Query& q : *queries) texts.push_back(PrintQuery(schema, q));
  return texts;
}

void ExpectMeterEq(const ExecutionMeter& single, const ExecutionMeter& fleet,
                   const std::string& context) {
  EXPECT_EQ(single.instances_scanned, fleet.instances_scanned) << context;
  EXPECT_EQ(single.index_probes, fleet.index_probes) << context;
  EXPECT_EQ(single.pointer_traversals, fleet.pointer_traversals) << context;
  EXPECT_EQ(single.predicate_evals, fleet.predicate_evals) << context;
  EXPECT_EQ(single.rows_out, fleet.rows_out) << context;
}

// One differential pass: executes every text on both engines and
// demands identical outcomes — rows in order, meters, contradiction
// handling, and plan-cache hit/miss behavior.
void ExpectDifferentialMatch(const Engine& single, const ShardedEngine& fleet,
                             const std::vector<std::string>& texts) {
  for (const std::string& text : texts) {
    auto s = single.Execute(text);
    auto f = fleet.Execute(text);
    ASSERT_TRUE(s.ok()) << s.status().ToString() << "\n" << text;
    ASSERT_TRUE(f.ok()) << f.status().ToString() << "\n" << text;
    EXPECT_EQ(s->answered_without_database, f->answered_without_database)
        << text;
    EXPECT_EQ(s->executed, f->executed) << text;
    EXPECT_EQ(s->plan_cache_hit, f->plan_cache_hit) << text;
    ASSERT_EQ(s->rows.rows.size(), f->rows.rows.size()) << text;
    // Exact ORDER, not just the multiset: the k-way provenance merge
    // must reproduce single-engine row order bit for bit.
    EXPECT_EQ(s->rows.rows, f->rows.rows) << text;
    ExpectMeterEq(s->meter, f->meter, text);
  }
}

// A constraint-consistent growth batch: same-segment inserts linked
// through pending handles (exercising per-shard handle renumbering),
// links from new to pre-existing rows, unconstrained attribute
// updates, and a tombstone delete.
MutationBatch GrowthBatch(const Schema& schema, int salt) {
  const ClassId supplier = schema.FindClass("supplier");
  const ClassId cargo = schema.FindClass("cargo");
  const ClassId driver = schema.FindClass("driver");
  const RelId supplies = schema.FindRelationship("supplies");
  const RelId collects = schema.FindRelationship("collects");

  MutationBatch batch;
  const int seg = salt % kNumSegments;
  auto s_obj = MakeSegmentObject(schema, supplier, seg, 1000 + salt);
  auto c_obj = MakeSegmentObject(schema, cargo, seg, 2000 + salt);
  EXPECT_TRUE(s_obj.ok() && c_obj.ok());
  const int64_t hs = batch.Insert(supplier, *s_obj);
  const int64_t hc = batch.Insert(cargo, *c_obj);
  batch.Link(supplies, hs, hc);
  // Existing vehicle of the same segment: generator segments are
  // row-major round robin, so global row `seg` belongs to segment seg.
  batch.Link(collects, hc, /*vehicle row=*/seg);
  batch.Update(supplier, /*row=*/salt % 4, schema.FindAttribute(
                   supplier, "name").attr_id,
               Value::String("renamed-" + std::to_string(salt)));
  batch.Delete(driver, /*row=*/8 + salt);
  return batch;
}

// A batch whose link pairs a segment-0 cargo with a segment-1 vehicle:
// a constraint violation for a single engine and (at fleet sizes that
// separate the segments) a cross-shard link for the coordinator —
// both must reject with kConstraintViolation and no version consumed.
MutationBatch CrossSegmentLinkBatch(const Schema& schema) {
  MutationBatch batch;
  batch.Link(schema.FindRelationship("collects"), /*cargo row=*/0,
             /*vehicle row=*/1);
  return batch;
}

class ShardedDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedDifferentialTest, ReadsMatchSingleEngine) {
  ASSERT_OK_AND_ASSIGN(Engine single, OpenSingle());
  ASSERT_OK(single.Load(DataSource::Generated(kSpec, kDataSeed)));
  ASSERT_OK_AND_ASSIGN(ShardedEngine fleet, OpenFleet(GetParam()));
  ASSERT_OK(fleet.Load(DataSource::Generated(kSpec, kDataSeed)));

  const std::vector<std::string> texts =
      WorkloadTexts(single.schema(), 7101, 20);
  ExpectDifferentialMatch(single, fleet, texts);  // cold: plan misses
  ExpectDifferentialMatch(single, fleet, texts);  // warm: plan hits
  EXPECT_EQ(single.stats().queries_executed, fleet.stats().queries_executed);
  EXPECT_EQ(single.stats().contradictions, fleet.stats().contradictions);
}

TEST_P(ShardedDifferentialTest, MutationsMatchSingleEngine) {
  ASSERT_OK_AND_ASSIGN(Engine single, OpenSingle());
  ASSERT_OK(single.Load(DataSource::Generated(kSpec, kDataSeed)));
  ASSERT_OK_AND_ASSIGN(ShardedEngine fleet, OpenFleet(GetParam()));
  ASSERT_OK(fleet.Load(DataSource::Generated(kSpec, kDataSeed)));
  const Schema& schema = single.schema();

  for (int salt = 0; salt < 8; ++salt) {
    const MutationBatch batch = GrowthBatch(schema, salt);
    ASSERT_OK_AND_ASSIGN(ApplyOutcome s, single.Apply(batch));
    ASSERT_OK_AND_ASSIGN(ApplyOutcome f, fleet.Apply(batch));
    EXPECT_EQ(s.snapshot_version, f.snapshot_version);
    // Global row allocation must agree — the fleet's inserted rows ARE
    // global ids.
    EXPECT_EQ(s.inserted_rows, f.inserted_rows);
    EXPECT_EQ(s.inserts, f.inserts);
    EXPECT_EQ(s.links, f.links);
    EXPECT_EQ(s.deletes, f.deletes);
  }
  EXPECT_EQ(single.data_version(), fleet.data_version());
  EXPECT_EQ(single.stats().mutation_batches_applied,
            fleet.stats().mutation_batches_applied);
  EXPECT_EQ(single.stats().mutation_ops_applied,
            fleet.stats().mutation_ops_applied);

  // The mutated stores (new rows, new links, tombstones) must still
  // read back identically, meters included.
  ExpectDifferentialMatch(single, fleet,
                          WorkloadTexts(schema, 7202, 15));
}

TEST_P(ShardedDifferentialTest, CrossSegmentLinkRejectedIdentically) {
  ASSERT_OK_AND_ASSIGN(Engine single, OpenSingle());
  ASSERT_OK(single.Load(DataSource::Generated(kSpec, kDataSeed)));
  ASSERT_OK_AND_ASSIGN(ShardedEngine fleet, OpenFleet(GetParam()));
  ASSERT_OK(fleet.Load(DataSource::Generated(kSpec, kDataSeed)));

  const MutationBatch bad = CrossSegmentLinkBatch(single.schema());
  auto s = single.Apply(bad);
  auto f = fleet.Apply(bad);
  ASSERT_FALSE(s.ok());
  ASSERT_FALSE(f.ok());
  // Single engine: constraint validation. Fleet: either the head's
  // validator (co-resident segments) or the coordinator's cross-shard
  // pre-check — the SAME typed status either way.
  EXPECT_EQ(s.status().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(f.status().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(single.data_version(), 1u);
  EXPECT_EQ(fleet.data_version(), 1u);
}

TEST_P(ShardedDifferentialTest, ApplyGroupMatchesSingleEngine) {
  ASSERT_OK_AND_ASSIGN(Engine single, OpenSingle());
  ASSERT_OK(single.Load(DataSource::Generated(kSpec, kDataSeed)));
  ASSERT_OK_AND_ASSIGN(ShardedEngine fleet, OpenFleet(GetParam()));
  ASSERT_OK(fleet.Load(DataSource::Generated(kSpec, kDataSeed)));
  const Schema& schema = single.schema();

  // Mixed group: two survivors, one no-op, one constraint violation.
  std::vector<MutationBatch> group;
  group.push_back(GrowthBatch(schema, 1));
  group.push_back(MutationBatch{});  // empty: no-op, no version
  group.push_back(CrossSegmentLinkBatch(schema));
  group.push_back(GrowthBatch(schema, 2));

  std::vector<Result<ApplyOutcome>> s = single.ApplyGroup(group);
  std::vector<Result<ApplyOutcome>> f = fleet.ApplyGroup(group);
  ASSERT_EQ(s.size(), group.size());
  ASSERT_EQ(f.size(), group.size());
  for (size_t i = 0; i < group.size(); ++i) {
    ASSERT_EQ(s[i].ok(), f[i].ok()) << "slot " << i;
    if (!s[i].ok()) {
      EXPECT_EQ(s[i].status().code(), f[i].status().code()) << "slot " << i;
      continue;
    }
    EXPECT_EQ(s[i]->snapshot_version, f[i]->snapshot_version) << "slot " << i;
    EXPECT_EQ(s[i]->inserted_rows, f[i]->inserted_rows) << "slot " << i;
  }
  EXPECT_EQ(single.data_version(), fleet.data_version());
  ExpectDifferentialMatch(single, fleet, WorkloadTexts(schema, 7303, 12));
}

TEST_P(ShardedDifferentialTest, ReloadInvalidatesAndRealigns) {
  ASSERT_OK_AND_ASSIGN(Engine single, OpenSingle());
  ASSERT_OK(single.Load(DataSource::Generated(kSpec, kDataSeed)));
  ASSERT_OK_AND_ASSIGN(ShardedEngine fleet, OpenFleet(GetParam()));
  ASSERT_OK(fleet.Load(DataSource::Generated(kSpec, kDataSeed)));

  const std::vector<std::string> texts =
      WorkloadTexts(single.schema(), 7404, 10);
  ExpectDifferentialMatch(single, fleet, texts);  // warm the caches
  ASSERT_OK(single.Apply(GrowthBatch(single.schema(), 3)).status());
  ASSERT_OK(fleet.Apply(GrowthBatch(fleet.schema(), 3)).status());
  EXPECT_GT(fleet.data_version(), 1u);

  // Reload with a DIFFERENT database: versions restart, cached plans
  // must not leak stale handles, and the differential must hold on the
  // new data (including the first, cache-missing pass).
  const DbSpec spec2{"SHARD_DIFF2", 20, 40};
  ASSERT_OK(single.Load(DataSource::Generated(spec2, kDataSeed + 1)));
  ASSERT_OK(fleet.Load(DataSource::Generated(spec2, kDataSeed + 1)));
  EXPECT_EQ(single.data_version(), 1u);
  EXPECT_EQ(fleet.data_version(), 1u);
  ASSERT_OK_AND_ASSIGN(QueryOutcome first_single, single.Execute(texts[0]));
  ASSERT_OK_AND_ASSIGN(QueryOutcome first_fleet, fleet.Execute(texts[0]));
  EXPECT_FALSE(first_single.plan_cache_hit);
  EXPECT_FALSE(first_fleet.plan_cache_hit);
  ExpectDifferentialMatch(single, fleet, texts);
}

TEST_P(ShardedDifferentialTest, SaveOpenRecoversCommittedPrefix) {
  const std::string dir = ::testing::TempDir() + "/sqopt_sharded_" +
                          std::to_string(GetParam());
  std::filesystem::remove_all(dir);

  ASSERT_OK_AND_ASSIGN(Engine single, OpenSingle());
  ASSERT_OK(single.Load(DataSource::Generated(kSpec, kDataSeed)));
  {
    ASSERT_OK_AND_ASSIGN(ShardedEngine fleet, OpenFleet(GetParam()));
    ASSERT_OK(fleet.Load(DataSource::Generated(kSpec, kDataSeed)));
    ASSERT_OK(fleet.Save(dir));
    // Post-Save commits land in the coordinator log only (no
    // checkpoint), so the reopen below must replay them.
    for (int salt = 0; salt < 4; ++salt) {
      ASSERT_OK(single.Apply(GrowthBatch(single.schema(), salt)).status());
      ASSERT_OK(fleet.Apply(GrowthBatch(fleet.schema(), salt)).status());
    }
    EXPECT_EQ(fleet.persist_dir(), dir);
  }

  ASSERT_OK_AND_ASSIGN(ShardedEngine reopened, ShardedEngine::Open(dir));
  EXPECT_EQ(reopened.num_shards(), GetParam());
  EXPECT_EQ(reopened.data_version(), single.data_version());
  EXPECT_GT(reopened.stats().wal_records_replayed, 0u);
  ExpectDifferentialMatch(single, reopened,
                          WorkloadTexts(single.schema(), 7505, 12));

  // And the recovered fleet keeps committing in lockstep.
  ASSERT_OK_AND_ASSIGN(ApplyOutcome s,
                       single.Apply(GrowthBatch(single.schema(), 9)));
  ASSERT_OK_AND_ASSIGN(ApplyOutcome f,
                       reopened.Apply(GrowthBatch(reopened.schema(), 9)));
  EXPECT_EQ(s.snapshot_version, f.snapshot_version);
  EXPECT_EQ(s.inserted_rows, f.inserted_rows);
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedDifferentialTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ShardedEngineTest, RoutingFollowsSegments) {
  ASSERT_OK_AND_ASSIGN(ShardedEngine fleet, OpenFleet(4));
  ASSERT_OK(fleet.Load(DataSource::Generated(kSpec, kDataSeed)));
  const Schema& schema = fleet.schema();
  const ObjectStore* store = fleet.store();
  ASSERT_NE(store, nullptr);
  // At 4 shards the segment IS the shard, and generator segments are
  // row-major round robin.
  for (size_t c = 0; c < schema.num_classes(); ++c) {
    const ClassId cid = static_cast<ClassId>(c);
    for (int64_t row = 0; row < store->NumObjects(cid); ++row) {
      EXPECT_EQ(fleet.ShardOfRow(cid, row), SegmentOfRow(row));
    }
  }
  // Relationship endpoints never span shards.
  for (size_t r = 0; r < schema.num_relationships(); ++r) {
    const RelId rid = static_cast<RelId>(r);
    const Relationship& rel = schema.relationship(rid);
    for (const auto& [a, b] : store->Pairs(rid)) {
      EXPECT_EQ(fleet.ShardOfRow(rel.a, a), fleet.ShardOfRow(rel.b, b));
    }
  }
}

TEST(ShardedEngineTest, RejectsInvalidShardCounts) {
  ShardOptions options;
  options.shards = 0;
  EXPECT_FALSE(ShardedEngine::Open(SchemaSource::Experiment(),
                                   ConstraintSource::Experiment(), options)
                   .ok());
  options.shards = 64;
  EXPECT_FALSE(ShardedEngine::Open(SchemaSource::Experiment(),
                                   ConstraintSource::Experiment(), options)
                   .ok());
}

}  // namespace
}  // namespace sqopt

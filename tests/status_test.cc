#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace sqopt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Overloaded("x").code(), StatusCode::kOverloaded);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::UnsupportedVersion("x").code(),
            StatusCode::kUnsupportedVersion);
}

TEST(StatusTest, ServingCodesHaveStableNames) {
  EXPECT_EQ(Status::Overloaded("q full").ToString(), "Overloaded: q full");
  EXPECT_EQ(Status::Timeout("deadline").ToString(), "Timeout: deadline");
}

TEST(StatusTest, UnsupportedVersionHasStableName) {
  EXPECT_EQ(Status::UnsupportedVersion("snapshot v1").ToString(),
            "UnsupportedVersion: snapshot v1");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  SQOPT_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status Chain(bool fail) {
  SQOPT_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace sqopt

#include "storage/object_store.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, BuildExperimentSchema());
    store_ = std::make_unique<ObjectStore>(&schema_);
    cargo_ = schema_.FindClass("cargo");
    vehicle_ = schema_.FindClass("vehicle");
    collects_ = schema_.FindRelationship("collects");
  }

  Object Cargo(const std::string& code, const std::string& desc,
               int64_t quantity, int64_t weight) {
    Object o;
    o.values = {Value::String(code), Value::String(desc),
                Value::Int(quantity), Value::Int(weight)};
    return o;
  }
  Object Vehicle(int64_t no, const std::string& desc, int64_t vclass,
                 int64_t capacity) {
    Object o;
    o.values = {Value::Int(no), Value::String(desc), Value::Int(vclass),
                Value::Int(capacity)};
    return o;
  }

  Schema schema_;
  std::unique_ptr<ObjectStore> store_;
  ClassId cargo_, vehicle_;
  RelId collects_;
};

TEST_F(StorageTest, InsertAndReadBack) {
  ASSERT_OK_AND_ASSIGN(int64_t row,
                       store_->Insert(cargo_, Cargo("c1", "fuel", 10, 50)));
  EXPECT_EQ(row, 0);
  EXPECT_EQ(store_->NumObjects(cargo_), 1);
  AttrRef desc = schema_.ResolveQualified("cargo.desc").value();
  EXPECT_EQ(store_->extent(cargo_).ValueAt(0, desc.attr_id),
            Value::String("fuel"));
}

TEST_F(StorageTest, InsertRejectsWrongArity) {
  Object bad;
  bad.values = {Value::Int(1)};
  auto result = store_->Insert(cargo_, std::move(bad));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StorageTest, IndexesMaintainedOnInsert) {
  ASSERT_OK(store_->Insert(cargo_, Cargo("a", "fuel", 1, 1)).status());
  ASSERT_OK(store_->Insert(cargo_, Cargo("b", "frozen food", 2, 2)).status());
  ASSERT_OK(store_->Insert(cargo_, Cargo("c", "fuel", 3, 3)).status());

  AttrRef desc = schema_.ResolveQualified("cargo.desc").value();
  const AttributeIndex* index = store_->GetIndex(desc);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), 3u);
  std::vector<int64_t> fuel = index->Equal(Value::String("fuel"));
  EXPECT_EQ(fuel.size(), 2u);
  std::vector<int64_t> nothing = index->Equal(Value::String("timber"));
  EXPECT_TRUE(nothing.empty());
}

TEST_F(StorageTest, NoIndexOnUnindexedAttribute) {
  AttrRef weight = schema_.ResolveQualified("cargo.weight").value();
  EXPECT_EQ(store_->GetIndex(weight), nullptr);
}

TEST_F(StorageTest, IndexRangeLookups) {
  AttrRef vno = schema_.ResolveQualified("vehicle.vehicleNo").value();
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_OK(store_->Insert(vehicle_, Vehicle(i, "van", 1, 10)).status());
  }
  const AttributeIndex* index = store_->GetIndex(vno);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->Lookup(CompareOp::kLt, Value::Int(3)).size(), 3u);
  EXPECT_EQ(index->Lookup(CompareOp::kLe, Value::Int(3)).size(), 4u);
  EXPECT_EQ(index->Lookup(CompareOp::kGt, Value::Int(7)).size(), 2u);
  EXPECT_EQ(index->Lookup(CompareOp::kGe, Value::Int(7)).size(), 3u);
  EXPECT_EQ(index->Lookup(CompareOp::kNe, Value::Int(5)).size(), 9u);
  EXPECT_EQ(index->Lookup(CompareOp::kEq, Value::Int(5)).size(), 1u);
}

TEST_F(StorageTest, LinkAndPartners) {
  ASSERT_OK(store_->Insert(cargo_, Cargo("a", "fuel", 1, 1)).status());
  ASSERT_OK(store_->Insert(cargo_, Cargo("b", "fuel", 2, 2)).status());
  ASSERT_OK(store_->Insert(vehicle_, Vehicle(1, "van", 1, 10)).status());
  ASSERT_OK(store_->Link(collects_, /*cargo=*/0, /*vehicle=*/0));
  ASSERT_OK(store_->Link(collects_, /*cargo=*/1, /*vehicle=*/0));

  EXPECT_EQ(store_->NumPairs(collects_), 2);
  // From the cargo side.
  EXPECT_EQ(store_->Partners(collects_, cargo_, 0).size(), 1u);
  // From the vehicle side: both cargos.
  EXPECT_EQ(store_->Partners(collects_, vehicle_, 0).size(), 2u);
  // Unlinked row: empty, not a crash.
  EXPECT_TRUE(store_->Partners(collects_, cargo_, 1).size() == 1u);
}

TEST_F(StorageTest, LinkRejectsBadRows) {
  ASSERT_OK(store_->Insert(cargo_, Cargo("a", "fuel", 1, 1)).status());
  Status s = store_->Link(collects_, 0, 99);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST_F(StorageTest, DistinctValuesAndMinMax) {
  ASSERT_OK(store_->Insert(cargo_, Cargo("a", "fuel", 5, 10)).status());
  ASSERT_OK(store_->Insert(cargo_, Cargo("b", "fuel", 7, 30)).status());
  ASSERT_OK(store_->Insert(cargo_, Cargo("c", "timber", 5, 20)).status());
  AttrRef desc = schema_.ResolveQualified("cargo.desc").value();
  AttrRef weight = schema_.ResolveQualified("cargo.weight").value();
  EXPECT_EQ(store_->DistinctValues(desc), 2);
  EXPECT_EQ(store_->DistinctValues(weight), 3);
  auto [min, max] = store_->MinMax(weight);
  EXPECT_EQ(min, Value::Int(10));
  EXPECT_EQ(max, Value::Int(30));
}

TEST_F(StorageTest, MinMaxOnEmptyExtent) {
  AttrRef weight = schema_.ResolveQualified("cargo.weight").value();
  auto [min, max] = store_->MinMax(weight);
  EXPECT_TRUE(min.is_null());
  EXPECT_TRUE(max.is_null());
}

TEST_F(StorageTest, PartitionExtentCoversEveryRowOnceInOrder) {
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_OK(
        store_->Insert(cargo_, Cargo("c" + std::to_string(i), "parcels",
                                     i, i))
            .status());
  }
  std::vector<Morsel> morsels = store_->PartitionExtent(cargo_, 4);
  ASSERT_EQ(morsels.size(), 3u);  // 4 + 4 + 2
  int64_t expected_begin = 0;
  for (const Morsel& m : morsels) {
    EXPECT_EQ(m.begin, expected_begin);
    EXPECT_GT(m.end, m.begin);
    EXPECT_LE(m.size(), 4);
    expected_begin = m.end;
  }
  EXPECT_EQ(expected_begin, store_->NumObjects(cargo_));
}

TEST_F(StorageTest, PartitionExtentEdgeCases) {
  // Empty extent: no morsels.
  EXPECT_TRUE(store_->PartitionExtent(cargo_, 4).empty());
  ASSERT_OK(store_->Insert(cargo_, Cargo("c0", "fuel", 1, 1)).status());
  // Morsel larger than the extent: one morsel, exact bounds.
  std::vector<Morsel> one = store_->PartitionExtent(cargo_, 100);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0);
  EXPECT_EQ(one[0].end, 1);
  // Non-positive morsel size falls back to the default, never throws.
  std::vector<Morsel> fallback = store_->PartitionExtent(cargo_, 0);
  ASSERT_EQ(fallback.size(), 1u);
  EXPECT_EQ(fallback[0].size(), 1);
}

TEST_F(StorageTest, ExtentSplitsIntoFixedSizeSegments) {
  // 2050 rows = two full 1024-row segments + one 2-row tail.
  for (int64_t i = 0; i < 2050; ++i) {
    ASSERT_OK_AND_ASSIGN(
        int64_t row,
        store_->Insert(cargo_, Cargo("c" + std::to_string(i), "fuel",
                                     i, i % 100)));
    ASSERT_EQ(row, i);
  }
  const Extent& extent = store_->extent(cargo_);
  EXPECT_EQ(extent.size(), 2050);
  EXPECT_EQ(extent.num_segments(), 3);
  AttrRef qty = schema_.ResolveQualified("cargo.quantity").value();
  // Rows on both sides of every segment boundary read back correctly.
  for (int64_t row : {int64_t{0}, int64_t{1023}, int64_t{1024},
                      int64_t{2047}, int64_t{2048}, int64_t{2049}}) {
    EXPECT_EQ(extent.ValueAt(row, qty.attr_id), Value::Int(row));
  }
}

TEST_F(StorageTest, CloneForWriteSplitsOnlyTheDirtySegment) {
  for (int64_t i = 0; i < 2050; ++i) {
    ASSERT_OK(store_->Insert(cargo_, Cargo("c" + std::to_string(i),
                                           "fuel", i, i % 100))
                  .status());
  }
  AttrRef weight = schema_.ResolveQualified("cargo.weight").value();
  std::unique_ptr<ObjectStore> clone =
      store_->CloneForWrite({cargo_}, {});
  const Extent& base = store_->extent(cargo_);
  const Extent& copy = clone->extent(cargo_);
  // The clone is a shell: all three segments shared with the base.
  for (int64_t row : {int64_t{0}, int64_t{1500}, int64_t{2049}}) {
    EXPECT_EQ(base.SegmentIdentity(row), copy.SegmentIdentity(row));
  }

  // One single-row update on the clone splits off EXACTLY the segment
  // holding that row.
  ASSERT_OK(clone->UpdateAttribute(cargo_, 1500, weight.attr_id,
                                   Value::Int(999)));
  EXPECT_NE(base.SegmentIdentity(1500), copy.SegmentIdentity(1500));
  EXPECT_EQ(base.SegmentIdentity(0), copy.SegmentIdentity(0));
  EXPECT_EQ(base.SegmentIdentity(2049), copy.SegmentIdentity(2049));

  // The pinned base snapshot still reads the pre-image.
  EXPECT_EQ(base.ValueAt(1500, weight.attr_id), Value::Int(1500 % 100));
  EXPECT_EQ(copy.ValueAt(1500, weight.attr_id), Value::Int(999));
}

TEST_F(StorageTest, ColumnsUseDeclaredTypedEncodings) {
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_OK(store_
                  ->Insert(cargo_, Cargo("c" + std::to_string(i), "fuel",
                                         i, i % 100))
                  .status());
  }
  const Extent& extent = store_->extent(cargo_);
  const SegmentBatch batch = extent.Batch(0);
  AttrRef code = schema_.ResolveQualified("cargo.code").value();
  AttrRef qty = schema_.ResolveQualified("cargo.quantity").value();
  const int code_slot = extent.SlotOf(code.attr_id);
  const int qty_slot = extent.SlotOf(qty.attr_id);
  ASSERT_GE(code_slot, 0);
  ASSERT_GE(qty_slot, 0);
  // Declared string attribute: generic array. Declared int attribute:
  // raw int64 array the vectorized kernels scan directly.
  EXPECT_EQ(batch.column(static_cast<size_t>(code_slot)).encoding,
            ColumnEncoding::kGeneric);
  const ColumnView qty_col = batch.column(static_cast<size_t>(qty_slot));
  ASSERT_EQ(qty_col.encoding, ColumnEncoding::kInt64);
  ASSERT_EQ(qty_col.size, 10);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(qty_col.i64[i], i);
}

TEST_F(StorageTest, MismatchedValueDemotesOnlyItsChunk) {
  // Two segments of int-typed weights...
  for (int64_t i = 0; i < 1030; ++i) {
    ASSERT_OK(store_
                  ->Insert(cargo_, Cargo("c" + std::to_string(i), "fuel",
                                         i, i % 100))
                  .status());
  }
  AttrRef weight = schema_.ResolveQualified("cargo.weight").value();
  // ...then a null overwrite lands in segment 1.
  ASSERT_OK(store_->UpdateAttribute(cargo_, 1025, weight.attr_id,
                                    Value::Null()));
  const Extent& extent = store_->extent(cargo_);
  const size_t slot = static_cast<size_t>(extent.SlotOf(weight.attr_id));
  // Segment 0 keeps its typed array; only the touched chunk demoted.
  EXPECT_EQ(extent.Batch(0).column(slot).encoding, ColumnEncoding::kInt64);
  EXPECT_EQ(extent.Batch(1).column(slot).encoding,
            ColumnEncoding::kGeneric);
  // Reads are unchanged either way.
  EXPECT_EQ(extent.ValueAt(1025, weight.attr_id), Value::Null());
  EXPECT_EQ(extent.ValueAt(1024, weight.attr_id), Value::Int(1024 % 100));
  EXPECT_EQ(extent.ValueAt(0, weight.attr_id), Value::Int(0));
}

TEST_F(StorageTest, RowAccessorsAbortOnOutOfRangeRow) {
  ASSERT_OK(store_->Insert(cargo_, Cargo("c1", "fuel", 1, 2)).status());
  AttrRef qty = schema_.ResolveQualified("cargo.quantity").value();
  const Extent& extent = store_->extent(cargo_);
  // The documented precondition: row accessors die loudly instead of
  // reading a neighbor's memory.
  EXPECT_DEATH(extent.ValueAt(1, qty.attr_id), "row 1 out of range");
  EXPECT_DEATH(extent.ValueAt(-1, qty.attr_id), "row -1 out of range");
  EXPECT_DEATH(extent.MaterializeRow(7), "row 7 out of range");
}

TEST(ExtentInheritanceTest, SubclassLayoutIncludesInheritedSlots) {
  auto schema = BuildFigure21Schema();
  ASSERT_TRUE(schema.ok());
  ObjectStore store(&*schema);
  ClassId driver = schema->FindClass("driver");
  // driver: name, clearance, rank (inherited) + license#, licenseClass,
  // licenseDate.
  Object d;
  d.values = {Value::String("bob"),  Value::String("secret"),
              Value::String("staff"), Value::Int(77),
              Value::Int(3),          Value::String("2026-01-01")};
  ASSERT_TRUE(store.Insert(driver, std::move(d)).ok());
  AttrRef name = schema->ResolveQualified("driver.name").value();
  AttrRef lic = schema->ResolveQualified("driver.licenseClass").value();
  EXPECT_EQ(store.extent(driver).ValueAt(0, name.attr_id),
            Value::String("bob"));
  EXPECT_EQ(store.extent(driver).ValueAt(0, lic.attr_id), Value::Int(3));
  // The inherited indexed attribute (employee.name) got a per-class
  // index on driver.
  EXPECT_NE(store.GetIndex(name), nullptr);
}

}  // namespace
}  // namespace sqopt

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace sqopt {
namespace {

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("\tx\n"), "x");
  EXPECT_EQ(StripWhitespace("no-trim"), "no-trim");
}

TEST(StringUtilTest, SplitBasic) {
  std::vector<std::string> parts = Split("a, b , c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  std::vector<std::string> parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, SplitNoTrim) {
  std::vector<std::string> parts = Split(" a ,b", ',', /*trim=*/false);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], " a ");
}

TEST(StringUtilTest, SplitTopLevelRespectsBrackets) {
  std::vector<std::string> parts =
      SplitTopLevel("f(a, b), c, g(d, e)", ',', '(', ')');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "f(a, b)");
  EXPECT_EQ(parts[1], "c");
  EXPECT_EQ(parts[2], "g(d, e)");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("select x", "select"));
  EXPECT_FALSE(StartsWith("sel", "select"));
  EXPECT_TRUE(EndsWith("a.cc", ".cc"));
  EXPECT_FALSE(EndsWith("a.h", ".cc"));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToLower("123-X"), "123-x");
}

TEST(StringUtilTest, LooksLikeInteger) {
  EXPECT_TRUE(LooksLikeInteger("42"));
  EXPECT_TRUE(LooksLikeInteger("-7"));
  EXPECT_TRUE(LooksLikeInteger("+3"));
  EXPECT_FALSE(LooksLikeInteger("4.2"));
  EXPECT_FALSE(LooksLikeInteger("x"));
  EXPECT_FALSE(LooksLikeInteger(""));
  EXPECT_FALSE(LooksLikeInteger("-"));
}

TEST(StringUtilTest, LooksLikeDouble) {
  EXPECT_TRUE(LooksLikeDouble("4.2"));
  EXPECT_TRUE(LooksLikeDouble("-0.5"));
  EXPECT_TRUE(LooksLikeDouble("1e3"));
  EXPECT_TRUE(LooksLikeDouble("42"));  // integers are valid doubles
  EXPECT_FALSE(LooksLikeDouble("abc"));
  EXPECT_FALSE(LooksLikeDouble("1.2.3"));
}

}  // namespace
}  // namespace sqopt

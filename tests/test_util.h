// Shared fixtures/helpers for sqopt tests.
#ifndef SQOPT_TESTS_TEST_UTIL_H_
#define SQOPT_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "catalog/access_stats.h"
#include "catalog/schema.h"
#include "constraints/constraint_catalog.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"
#include "workload/example_schema.h"

// Unwraps a Result<T>, failing the test on error.
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                          \
  ASSERT_OK_AND_ASSIGN_IMPL(                                      \
      SQOPT_ASSIGN_OR_RETURN_NAME(_test_result_, __LINE__), lhs, rexpr)
#define ASSERT_OK_AND_ASSIGN_IMPL(var, lhs, rexpr)                \
  auto var = (rexpr);                                             \
  ASSERT_TRUE(var.ok()) << var.status().ToString();               \
  lhs = std::move(var).value()

#define ASSERT_OK(expr)                          \
  do {                                           \
    ::sqopt::Status _st = (expr);                \
    ASSERT_TRUE(_st.ok()) << _st.ToString();     \
  } while (0)

#define EXPECT_OK(expr)                          \
  do {                                           \
    ::sqopt::Status _st = (expr);                \
    EXPECT_TRUE(_st.ok()) << _st.ToString();     \
  } while (0)

namespace sqopt::testing {

// Figure 2.1 schema + Figure 2.2 constraints, precompiled.
class PaperExampleFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BuildFigure21Schema();
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = std::move(schema).value();
    catalog_ = std::make_unique<ConstraintCatalog>(&schema_);
    auto constraints = Figure22Constraints(schema_);
    ASSERT_TRUE(constraints.ok()) << constraints.status().ToString();
    for (HornClause& clause : *constraints) {
      ASSERT_TRUE(catalog_->AddConstraint(std::move(clause)).ok());
    }
    stats_ = std::make_unique<AccessStats>(schema_.num_classes());
    ASSERT_TRUE(catalog_->Precompile(stats_.get()).ok());
  }

  Schema schema_;
  std::unique_ptr<ConstraintCatalog> catalog_;
  std::unique_ptr<AccessStats> stats_;
};

// Experiment schema + 15 constraints, precompiled.
class ExperimentFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = BuildExperimentSchema();
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = std::move(schema).value();
    catalog_ = std::make_unique<ConstraintCatalog>(&schema_);
    auto constraints = ExperimentConstraints(schema_);
    ASSERT_TRUE(constraints.ok()) << constraints.status().ToString();
    for (HornClause& clause : *constraints) {
      ASSERT_TRUE(catalog_->AddConstraint(std::move(clause)).ok());
    }
    stats_ = std::make_unique<AccessStats>(schema_.num_classes());
    ASSERT_TRUE(catalog_->Precompile(stats_.get()).ok());
  }

  Schema schema_;
  std::unique_ptr<ConstraintCatalog> catalog_;
  std::unique_ptr<AccessStats> stats_;
};

}  // namespace sqopt::testing

#endif  // SQOPT_TESTS_TEST_UTIL_H_

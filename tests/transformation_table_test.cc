#include "sqo/transformation_table.h"

#include <gtest/gtest.h>

#include "constraints/constraint_parser.h"
#include "query/query_parser.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

using sqopt::testing::PaperExampleFixture;

// Section 3.5, Step 1: the initialized table for the Figure 2.3 query
// must be exactly
//   T = ( PresentAntecedent  _           AbsentConsequent )
//       ( _                  Imperative  AbsentAntecedent )
// over P = {p1 = vehicle.desc = "refrigerated truck",
//           p2 = supplier.name = "SFI",
//           p3 = cargo.desc = "frozen food"}.
class TableInitTest : public PaperExampleFixture {
 protected:
  void SetUp() override {
    PaperExampleFixture::SetUp();
    auto query = Figure23SampleQuery(schema_);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    query_ = std::move(query).value();
  }

  PredId Col(const TransformationTable& table, const std::string& text) {
    auto p = ParsePredicate(schema_, text);
    EXPECT_TRUE(p.ok());
    PredId id = table.pool().Find(*p);
    EXPECT_NE(id, kInvalidPred) << text;
    return id;
  }

  // Row index whose constraint has the given label.
  size_t RowOf(const TransformationTable& table, const std::string& label) {
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (catalog_->clause(table.row(r).constraint).label() == label) {
        return r;
      }
    }
    ADD_FAILURE() << "no row for constraint " << label;
    return 0;
  }

  Query query_;
};

TEST_F(TableInitTest, MatchesPaperStep1) {
  std::vector<ConstraintId> relevant =
      catalog_->RelevantForQuery(query_.classes);
  // c1 and c2 are relevant to {supplier, cargo, vehicle} (and possibly
  // the derived c1*c2).
  OptimizerOptions options;
  options.match_mode = MatchMode::kExact;  // the paper's exposition
  TransformationTable table = TransformationTable::Build(
      schema_, *catalog_, relevant, query_, options);

  EXPECT_EQ(table.num_rows(), relevant.size());
  PredId p1 = Col(table, "vehicle.desc = \"refrigerated truck\"");
  PredId p2 = Col(table, "supplier.name = \"SFI\"");
  PredId p3 = Col(table, "cargo.desc = \"frozen food\"");

  size_t c1 = RowOf(table, "c1");
  size_t c2 = RowOf(table, "c2");

  EXPECT_EQ(table.state(c1, p1), CellState::kPresentAntecedent);
  EXPECT_EQ(table.state(c1, p2), CellState::kNotInConstraint);
  EXPECT_EQ(table.state(c1, p3), CellState::kAbsentConsequent);

  EXPECT_EQ(table.state(c2, p1), CellState::kNotInConstraint);
  EXPECT_EQ(table.state(c2, p2), CellState::kImperative);
  EXPECT_EQ(table.state(c2, p3), CellState::kAbsentAntecedent);

  EXPECT_TRUE(table.InQuery(p1));
  EXPECT_TRUE(table.InQuery(p2));
  EXPECT_FALSE(table.InQuery(p3));

  EXPECT_TRUE(table.AllAntecedentsPresent(c1));
  EXPECT_FALSE(table.AllAntecedentsPresent(c2));
}

TEST_F(TableInitTest, FinalTagDefaultsToImperative) {
  std::vector<ConstraintId> relevant =
      catalog_->RelevantForQuery(query_.classes);
  OptimizerOptions options;
  options.match_mode = MatchMode::kExact;
  TransformationTable table = TransformationTable::Build(
      schema_, *catalog_, relevant, query_, options);
  PredId p1 = Col(table, "vehicle.desc = \"refrigerated truck\"");
  EXPECT_EQ(table.FinalTag(p1), PredicateTag::kImperative);
  // p2 appears as an Imperative consequent cell, so it HAS a tag cell.
  PredId p2 = Col(table, "supplier.name = \"SFI\"");
  EXPECT_TRUE(table.HasTagCell(p2));
  EXPECT_EQ(table.FinalTag(p2), PredicateTag::kImperative);
  // p1 only appears as an antecedent: no tag cell.
  EXPECT_FALSE(table.HasTagCell(p1));
}

TEST_F(TableInitTest, SetStateCountsWrites) {
  std::vector<ConstraintId> relevant =
      catalog_->RelevantForQuery(query_.classes);
  OptimizerOptions options;
  TransformationTable table = TransformationTable::Build(
      schema_, *catalog_, relevant, query_, options);
  EXPECT_EQ(table.cell_writes(), 0u);  // construction does not count
  table.set_state(0, 0, CellState::kRedundant);
  EXPECT_EQ(table.cell_writes(), 1u);
}

TEST_F(TableInitTest, ImpliedModeMarksStrongerQueryPredicatesPresent) {
  // Replace the query predicate with a STRICTLY stronger one: under
  // exact match c1 cannot fire; under implied match it can.
  auto strong = ParseQuery(schema_, R"(
(SELECT {cargo.desc} {}
        {vehicle.desc = "refrigerated truck", vehicle.class >= 3}
        {collects} {cargo, vehicle}))");
  ASSERT_TRUE(strong.ok()) << strong.status().ToString();

  // Add a constraint whose antecedent (class >= 2) is implied by the
  // query's class >= 3.
  auto extra = ParseConstraint(
      schema_, "cx: vehicle.class >= 2 -> cargo.quantity >= 0");
  ASSERT_TRUE(extra.ok());
  ASSERT_OK(catalog_->AddConstraint(std::move(*extra)));
  ASSERT_OK(catalog_->Precompile(stats_.get()));

  std::vector<ConstraintId> relevant =
      catalog_->RelevantForQuery(strong->classes);

  OptimizerOptions exact;
  exact.match_mode = MatchMode::kExact;
  TransformationTable exact_table = TransformationTable::Build(
      schema_, *catalog_, relevant, *strong, exact);

  OptimizerOptions implied;
  implied.match_mode = MatchMode::kImplied;
  TransformationTable implied_table = TransformationTable::Build(
      schema_, *catalog_, relevant, *strong, implied);

  size_t cx_row = SIZE_MAX;
  for (size_t r = 0; r < exact_table.num_rows(); ++r) {
    if (catalog_->clause(exact_table.row(r).constraint).label() == "cx") {
      cx_row = r;
    }
  }
  ASSERT_NE(cx_row, SIZE_MAX);
  EXPECT_FALSE(exact_table.AllAntecedentsPresent(cx_row));
  EXPECT_TRUE(implied_table.AllAntecedentsPresent(cx_row));
}

}  // namespace
}  // namespace sqopt

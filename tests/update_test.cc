// Update-in-place: extent mutation, index maintenance, and the Siegel
// caveat — state-derived rules must be re-validated after updates.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "constraints/rule_derivation.h"
#include "exec/executor.h"
#include "query/query_parser.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

using sqopt::testing::ExperimentFixture;

class UpdateTest : public ExperimentFixture {
 protected:
  void SetUp() override {
    ExperimentFixture::SetUp();
    ASSERT_OK_AND_ASSIGN(
        store_, GenerateDatabase(schema_, DbSpec{"UP", 40, 80}, 17));
    cargo_ = schema_.FindClass("cargo");
    desc_ = schema_.ResolveQualified("cargo.desc").value();
    weight_ = schema_.ResolveQualified("cargo.weight").value();
  }
  std::unique_ptr<ObjectStore> store_;
  ClassId cargo_;
  AttrRef desc_, weight_;
};

TEST_F(UpdateTest, UpdateChangesStoredValue) {
  ASSERT_OK(store_->UpdateAttribute(cargo_, 0, weight_.attr_id,
                                    Value::Int(999)));
  EXPECT_EQ(store_->extent(cargo_).ValueAt(0, weight_.attr_id),
            Value::Int(999));
}

TEST_F(UpdateTest, UpdateMaintainsIndex) {
  const AttributeIndex* index = store_->GetIndex(desc_);
  ASSERT_NE(index, nullptr);
  size_t frozen_before = index->Equal(Value::String("frozen food")).size();
  ASSERT_GT(frozen_before, 0u);

  // Row 0 is segment 0 => frozen food. Repaint it.
  ASSERT_OK(store_->UpdateAttribute(cargo_, 0, desc_.attr_id,
                                    Value::String("mystery box")));
  EXPECT_EQ(index->Equal(Value::String("frozen food")).size(),
            frozen_before - 1);
  std::vector<int64_t> mystery =
      index->Equal(Value::String("mystery box"));
  ASSERT_EQ(mystery.size(), 1u);
  EXPECT_EQ(mystery[0], 0);
  EXPECT_TRUE(index->tree().CheckInvariants());
}

TEST_F(UpdateTest, UpdatedIndexServesQueries) {
  ASSERT_OK(store_->UpdateAttribute(cargo_, 4, desc_.attr_id,
                                    Value::String("mystery box")));
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(schema_,
                          "{cargo.code} {} {cargo.desc = \"mystery box\"} "
                          "{} {cargo}"));
  ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecuteQuery(*store_, q, nullptr));
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::String("cargo-4"));
}

TEST_F(UpdateTest, UpdateRejectsBadTargets) {
  EXPECT_EQ(store_->UpdateAttribute(cargo_, -1, weight_.attr_id,
                                    Value::Int(1))
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(store_->UpdateAttribute(cargo_, 9999, weight_.attr_id,
                                    Value::Int(1))
                .code(),
            StatusCode::kOutOfRange);
  AttrRef foreign = schema_.ResolveQualified("vehicle.vclass").value();
  EXPECT_EQ(store_->UpdateAttribute(cargo_, 0, foreign.attr_id,
                                    Value::Int(1))
                .code(),
            StatusCode::kNotFound);
}

TEST_F(UpdateTest, StateRulesInvalidateAfterUpdate) {
  // Mine, verify all hold, then break one by pushing a frozen-food
  // cargo's weight beyond the mined bound.
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> rules,
                       DeriveStateRules(*store_));
  for (const HornClause& rule : rules) {
    ASSERT_TRUE(RuleHoldsOnStore(*store_, rule));
  }
  ASSERT_OK(store_->UpdateAttribute(cargo_, 0, weight_.attr_id,
                                    Value::Int(100000)));
  int broken = 0;
  for (const HornClause& rule : rules) {
    if (!RuleHoldsOnStore(*store_, rule)) ++broken;
  }
  // At least the global weight upper bound and the frozen-food weight
  // bound break.
  EXPECT_GE(broken, 2);

  // Re-derivation produces rules that hold again.
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> fresh,
                       DeriveStateRules(*store_));
  for (const HornClause& rule : fresh) {
    EXPECT_TRUE(RuleHoldsOnStore(*store_, rule)) << rule.ToString(schema_);
  }
}

TEST_F(UpdateTest, DeleteTombstonesCascadesAndHidesFromScans) {
  RelId supplies = schema_.FindRelationship("supplies");
  ClassId supplier = schema_.FindClass("supplier");
  const int64_t pairs_before = store_->NumPairs(supplies);
  const size_t partners_of_0 =
      store_->Partners(supplies, cargo_, 0).size();
  ASSERT_GT(partners_of_0, 0u);

  ASSERT_OK(store_->Delete(cargo_, 0));
  EXPECT_FALSE(store_->IsLive(cargo_, 0));
  EXPECT_EQ(store_->NumLiveObjects(cargo_), 39);
  EXPECT_EQ(store_->NumObjects(cargo_), 40);  // the slot remains
  // Cascade: no relationship instance survives the row...
  EXPECT_TRUE(store_->Partners(supplies, cargo_, 0).empty());
  EXPECT_EQ(store_->NumPairs(supplies),
            pairs_before - static_cast<int64_t>(partners_of_0));
  // ...adjacency is scrubbed from the partner side too...
  for (int64_t s = 0; s < store_->NumObjects(supplier); ++s) {
    const std::vector<int64_t>& back =
        store_->Partners(supplies, supplier, s);
    EXPECT_EQ(std::count(back.begin(), back.end(), 0), 0);
  }
  // ...the index no longer serves the row, and scans skip it.
  std::vector<int64_t> frozen =
      store_->GetIndex(desc_)->Equal(Value::String("frozen food"));
  EXPECT_EQ(std::count(frozen.begin(), frozen.end(), 0), 0);
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(schema_, "{cargo.code} {} {} {} {cargo}"));
  ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecuteQuery(*store_, q, nullptr));
  EXPECT_EQ(rs.rows.size(), 39u);
  for (const auto& row : rs.rows) {
    EXPECT_NE(row[0], Value::String("cargo-0"));
  }

  // Deleting twice is an error; mutating a dead row is an error.
  EXPECT_EQ(store_->Delete(cargo_, 0).code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->UpdateAttribute(cargo_, 0, weight_.attr_id,
                                    Value::Int(1))
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store_->Link(supplies, 1, 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(UpdateTest, UnlinkRemovesExactlyOnePair) {
  RelId supplies = schema_.FindRelationship("supplies");
  const int64_t pairs_before = store_->NumPairs(supplies);
  // The diagonal guarantees pair (3, 3) exists.
  ASSERT_OK(store_->Unlink(supplies, 3, 3));
  EXPECT_EQ(store_->NumPairs(supplies), pairs_before - 1);
  const std::vector<int64_t>& partners =
      store_->Partners(supplies, schema_.FindClass("supplier"), 3);
  EXPECT_EQ(std::count(partners.begin(), partners.end(), 3), 0);
  EXPECT_EQ(store_->Unlink(supplies, 3, 3).code(), StatusCode::kNotFound);
  // Re-linking after an unlink is legal.
  ASSERT_OK(store_->Link(supplies, 3, 3));
}

TEST_F(UpdateTest, CloneForWriteIsolatesTouchedStateAndSharesTheRest) {
  ClassId vehicle = schema_.FindClass("vehicle");
  RelId supplies = schema_.FindRelationship("supplies");
  std::unique_ptr<ObjectStore> clone =
      store_->CloneForWrite({cargo_}, {supplies});

  // Untouched substructures are SHARED (same objects, not copies)...
  EXPECT_EQ(&clone->extent(vehicle), &store_->extent(vehicle));
  AttrRef vno = schema_.ResolveQualified("vehicle.vehicleNo").value();
  EXPECT_EQ(clone->GetIndex(vno), store_->GetIndex(vno));
  // ...while touched ones are private copies.
  EXPECT_NE(&clone->extent(cargo_), &store_->extent(cargo_));
  EXPECT_NE(clone->GetIndex(desc_), store_->GetIndex(desc_));

  // Mutations on the clone never reach the original.
  ASSERT_OK(clone->UpdateAttribute(cargo_, 0, desc_.attr_id,
                                   Value::String("mystery box")));
  ASSERT_OK(clone->Delete(cargo_, 1));
  ASSERT_OK(clone->Unlink(supplies, 2, 2));
  EXPECT_EQ(store_->extent(cargo_).ValueAt(0, desc_.attr_id),
            Value::String("frozen food"));
  EXPECT_TRUE(store_->IsLive(cargo_, 1));
  EXPECT_TRUE(store_->GetIndex(desc_)
                  ->Equal(Value::String("mystery box"))
                  .empty());
  const std::vector<int64_t>& partners =
      store_->Partners(supplies, schema_.FindClass("supplier"), 2);
  EXPECT_EQ(std::count(partners.begin(), partners.end(), 2), 1);

  // And the clone's index serves its own divergent state.
  std::vector<int64_t> mystery =
      clone->GetIndex(desc_)->Equal(Value::String("mystery box"));
  ASSERT_EQ(mystery.size(), 1u);
  EXPECT_EQ(mystery[0], 0);
}

TEST_F(UpdateTest, IntegrityConstraintsAreUpdateRobustByDesign) {
  // The hand-written constraints only mention segment-determined
  // attributes; an update that respects segments keeps them true. This
  // documents the contract the workload generator maintains.
  ASSERT_OK(store_->UpdateAttribute(cargo_, 0, weight_.attr_id,
                                    Value::Int(15)));  // still <= 40
  for (ConstraintId id = 0;
       id < static_cast<ConstraintId>(catalog_->clauses().size()); ++id) {
    const HornClause& clause = catalog_->clause(id);
    if (clause.ReferencedClasses().size() == 1) {
      EXPECT_TRUE(RuleHoldsOnStore(*store_, clause))
          << clause.ToString(schema_);
    }
  }
}

}  // namespace
}  // namespace sqopt

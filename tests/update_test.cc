// Update-in-place: extent mutation, index maintenance, and the Siegel
// caveat — state-derived rules must be re-validated after updates.
#include <gtest/gtest.h>

#include "constraints/rule_derivation.h"
#include "exec/executor.h"
#include "query/query_parser.h"
#include "tests/test_util.h"

namespace sqopt {
namespace {

using sqopt::testing::ExperimentFixture;

class UpdateTest : public ExperimentFixture {
 protected:
  void SetUp() override {
    ExperimentFixture::SetUp();
    ASSERT_OK_AND_ASSIGN(
        store_, GenerateDatabase(schema_, DbSpec{"UP", 40, 80}, 17));
    cargo_ = schema_.FindClass("cargo");
    desc_ = schema_.ResolveQualified("cargo.desc").value();
    weight_ = schema_.ResolveQualified("cargo.weight").value();
  }
  std::unique_ptr<ObjectStore> store_;
  ClassId cargo_;
  AttrRef desc_, weight_;
};

TEST_F(UpdateTest, UpdateChangesStoredValue) {
  ASSERT_OK(store_->UpdateAttribute(cargo_, 0, weight_.attr_id,
                                    Value::Int(999)));
  EXPECT_EQ(store_->extent(cargo_).ValueAt(0, weight_.attr_id),
            Value::Int(999));
}

TEST_F(UpdateTest, UpdateMaintainsIndex) {
  const AttributeIndex* index = store_->GetIndex(desc_);
  ASSERT_NE(index, nullptr);
  size_t frozen_before = index->Equal(Value::String("frozen food")).size();
  ASSERT_GT(frozen_before, 0u);

  // Row 0 is segment 0 => frozen food. Repaint it.
  ASSERT_OK(store_->UpdateAttribute(cargo_, 0, desc_.attr_id,
                                    Value::String("mystery box")));
  EXPECT_EQ(index->Equal(Value::String("frozen food")).size(),
            frozen_before - 1);
  std::vector<int64_t> mystery =
      index->Equal(Value::String("mystery box"));
  ASSERT_EQ(mystery.size(), 1u);
  EXPECT_EQ(mystery[0], 0);
  EXPECT_TRUE(index->tree().CheckInvariants());
}

TEST_F(UpdateTest, UpdatedIndexServesQueries) {
  ASSERT_OK(store_->UpdateAttribute(cargo_, 4, desc_.attr_id,
                                    Value::String("mystery box")));
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(schema_,
                          "{cargo.code} {} {cargo.desc = \"mystery box\"} "
                          "{} {cargo}"));
  ASSERT_OK_AND_ASSIGN(ResultSet rs, ExecuteQuery(*store_, q, nullptr));
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::String("cargo-4"));
}

TEST_F(UpdateTest, UpdateRejectsBadTargets) {
  EXPECT_EQ(store_->UpdateAttribute(cargo_, -1, weight_.attr_id,
                                    Value::Int(1))
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(store_->UpdateAttribute(cargo_, 9999, weight_.attr_id,
                                    Value::Int(1))
                .code(),
            StatusCode::kOutOfRange);
  AttrRef foreign = schema_.ResolveQualified("vehicle.vclass").value();
  EXPECT_EQ(store_->UpdateAttribute(cargo_, 0, foreign.attr_id,
                                    Value::Int(1))
                .code(),
            StatusCode::kNotFound);
}

TEST_F(UpdateTest, StateRulesInvalidateAfterUpdate) {
  // Mine, verify all hold, then break one by pushing a frozen-food
  // cargo's weight beyond the mined bound.
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> rules,
                       DeriveStateRules(*store_));
  for (const HornClause& rule : rules) {
    ASSERT_TRUE(RuleHoldsOnStore(*store_, rule));
  }
  ASSERT_OK(store_->UpdateAttribute(cargo_, 0, weight_.attr_id,
                                    Value::Int(100000)));
  int broken = 0;
  for (const HornClause& rule : rules) {
    if (!RuleHoldsOnStore(*store_, rule)) ++broken;
  }
  // At least the global weight upper bound and the frozen-food weight
  // bound break.
  EXPECT_GE(broken, 2);

  // Re-derivation produces rules that hold again.
  ASSERT_OK_AND_ASSIGN(std::vector<HornClause> fresh,
                       DeriveStateRules(*store_));
  for (const HornClause& rule : fresh) {
    EXPECT_TRUE(RuleHoldsOnStore(*store_, rule)) << rule.ToString(schema_);
  }
}

TEST_F(UpdateTest, IntegrityConstraintsAreUpdateRobustByDesign) {
  // The hand-written constraints only mention segment-determined
  // attributes; an update that respects segments keeps them true. This
  // documents the contract the workload generator maintains.
  ASSERT_OK(store_->UpdateAttribute(cargo_, 0, weight_.attr_id,
                                    Value::Int(15)));  // still <= 40
  for (ConstraintId id = 0;
       id < static_cast<ConstraintId>(catalog_->clauses().size()); ++id) {
    const HornClause& clause = catalog_->clause(id);
    if (clause.ReferencedClasses().size() == 1) {
      EXPECT_TRUE(RuleHoldsOnStore(*store_, clause))
          << clause.ToString(schema_);
    }
  }
}

}  // namespace
}  // namespace sqopt

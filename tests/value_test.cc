#include "types/value.h"

#include <gtest/gtest.h>

#include <tuple>

namespace sqopt {
namespace {

TEST(ValueTest, TypesReportCorrectly) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(3).type(), ValueType::kInt);
  EXPECT_EQ(Value::Double(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
  EXPECT_EQ(Value::Ref(Oid{1, 2}).type(), ValueType::kRef);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.5)), -1);
  EXPECT_EQ(Value::Double(5.1).Compare(Value::Int(5)), 1);
}

TEST(ValueTest, NullIsIncomparable) {
  EXPECT_FALSE(Value::Null().Compare(Value::Int(1)).has_value());
  EXPECT_FALSE(Value::Int(1).Compare(Value::Null()).has_value());
  EXPECT_FALSE(Value::Null().Compare(Value::Null()).has_value());
}

TEST(ValueTest, MismatchedTypesIncomparable) {
  EXPECT_FALSE(Value::String("3").Compare(Value::Int(3)).has_value());
  EXPECT_FALSE(Value::Bool(true).Compare(Value::Int(1)).has_value());
}

TEST(ValueTest, StringComparison) {
  EXPECT_EQ(Value::String("abc").Compare(Value::String("abd")), -1);
  EXPECT_EQ(Value::String("abc").Compare(Value::String("abc")), 0);
  EXPECT_EQ(Value::String("b").Compare(Value::String("a")), 1);
}

TEST(ValueTest, EqualityIsStrict) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  // operator== is representation equality: 3 != 3.0 as values even
  // though Compare treats them as equal.
  EXPECT_FALSE(Value::Int(3) == Value::Double(3.0));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, OrderingGroupsNumericTypes) {
  EXPECT_TRUE(Value::Int(2) < Value::Double(2.5));
  EXPECT_TRUE(Value::Double(1.5) < Value::Int(2));
  // Cross-type-class ordering is by type class, stable.
  EXPECT_TRUE(Value::Bool(true) < Value::Int(0));
  EXPECT_TRUE(Value::Int(99) < Value::String(""));
}

TEST(ValueTest, ParseLiterals) {
  EXPECT_EQ(Value::Parse("null").value(), Value::Null());
  EXPECT_EQ(Value::Parse("true").value(), Value::Bool(true));
  EXPECT_EQ(Value::Parse("false").value(), Value::Bool(false));
  EXPECT_EQ(Value::Parse("42").value(), Value::Int(42));
  EXPECT_EQ(Value::Parse("-17").value(), Value::Int(-17));
  EXPECT_EQ(Value::Parse("2.5").value(), Value::Double(2.5));
  EXPECT_EQ(Value::Parse("\"hi there\"").value(), Value::String("hi there"));
  EXPECT_EQ(Value::Parse("'single'").value(), Value::String("single"));
}

TEST(ValueTest, ParseBareWordIsString) {
  EXPECT_EQ(Value::Parse("SFI").value(), Value::String("SFI"));
}

TEST(ValueTest, ParseEmptyFails) {
  EXPECT_FALSE(Value::Parse("   ").ok());
}

TEST(ValueTest, ToStringRoundTrips) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::String("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Null().ToString(), "null");
}

TEST(ValueTest, HashConsistentWithNumericEquality) {
  // 3 and 3.0 compare equal, so they must hash equal for pool interning
  // to behave.
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("a").Hash(), Value::String("a").Hash());
}

TEST(ValueTest, RefValues) {
  Oid oid{2, 17};
  Value v = Value::Ref(oid);
  EXPECT_EQ(v.ref_value(), oid);
  EXPECT_TRUE(oid.valid());
  EXPECT_FALSE((Oid{}).valid());
}

// Parameterized comparison sweep: (lhs, rhs, expected cmp).
using CmpCase = std::tuple<Value, Value, int>;

class ValueCompareTest : public ::testing::TestWithParam<CmpCase> {};

TEST_P(ValueCompareTest, CompareMatchesExpected) {
  const auto& [lhs, rhs, expected] = GetParam();
  auto cmp = lhs.Compare(rhs);
  ASSERT_TRUE(cmp.has_value());
  EXPECT_EQ(*cmp, expected);
  // Antisymmetry.
  auto rcmp = rhs.Compare(lhs);
  ASSERT_TRUE(rcmp.has_value());
  EXPECT_EQ(*rcmp, -expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ValueCompareTest,
    ::testing::Values(
        CmpCase{Value::Int(1), Value::Int(2), -1},
        CmpCase{Value::Int(2), Value::Int(2), 0},
        CmpCase{Value::Int(3), Value::Int(2), 1},
        CmpCase{Value::Double(1.5), Value::Double(2.5), -1},
        CmpCase{Value::Int(2), Value::Double(2.0), 0},
        CmpCase{Value::Double(-1.0), Value::Int(0), -1},
        CmpCase{Value::String("a"), Value::String("b"), -1},
        CmpCase{Value::String("z"), Value::String("z"), 0},
        CmpCase{Value::Bool(false), Value::Bool(true), -1},
        CmpCase{Value::Bool(true), Value::Bool(true), 0}));

}  // namespace
}  // namespace sqopt

// Wire protocol v2 units (no sockets): versioned HELLO layout, the v2
// request/response surface (kApply / kSubscribe / kReplicate /
// kCheckpoint) roundtripping with MutationBatch serde, version gating
// (a v2-only type on a v1 connection is a typed kUnsupportedVersion,
// never corruption), and the adversarial property sweep the protocol
// is pinned by: every encoded kApply/kSubscribe payload truncated at
// EVERY byte offset must decode to a typed error — no crash, no
// partially-decoded batch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"
#include "persist/serde.h"
#include "server/wire.h"
#include "tests/test_util.h"
#include "workload/mutation_script.h"

namespace sqopt::server {
namespace {

constexpr uint64_t kSeed = 20260807;
const DbSpec kSpec{"wire_v2_test", 40, 60};

// A real mutation batch from the deterministic script — the serde
// sweep should chew on genuine ops, not a hand-rolled toy.
MutationBatch ScriptBatch() {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  EXPECT_TRUE(opened.ok());
  Engine engine = std::move(opened).value();
  EXPECT_TRUE(engine.Load(DataSource::Generated(kSpec, kSeed)).ok());
  std::vector<int64_t> base;
  for (const ObjectClass& oc : engine.schema().classes()) {
    base.push_back(engine.store()->NumObjects(oc.id));
  }
  MutationScript script(&engine.schema(), base, kSeed);
  auto batch = script.Next();
  EXPECT_TRUE(batch.ok());
  EXPECT_GT(batch->ops().size(), 0u);
  return std::move(batch).value();
}

// Strips the frame header off an EncodeRequest result, returning the
// raw payload DecodeRequest sees.
std::string PayloadOf(const Request& request, uint32_t protocol) {
  std::string frame = EncodeRequest(request, protocol);
  return frame.substr(8);  // u32 len + u32 crc
}

std::string PayloadOfResponse(const Response& response) {
  return EncodeResponse(response).substr(8);
}

TEST(WireV2Test, HelloRoundtripIsVersionInvariant) {
  Request hello;
  hello.type = RequestType::kHello;
  hello.protocol_version = 2;
  hello.feature_bits = kFeatureReplication;
  // The HELLO layout must not depend on the (not yet negotiated)
  // connection version: v1 and v2 encodings are byte-identical.
  EXPECT_EQ(PayloadOf(hello, 1), PayloadOf(hello, 2));
  ASSERT_OK_AND_ASSIGN(Request decoded, DecodeRequest(PayloadOf(hello, 1),
                                                      /*protocol_version=*/1));
  EXPECT_EQ(decoded.type, RequestType::kHello);
  EXPECT_EQ(decoded.protocol_version, 2u);
  EXPECT_EQ(decoded.feature_bits, kFeatureReplication);

  Response ack;
  ack.type = RequestType::kHello;
  ack.protocol_version = 2;
  ack.feature_bits = kFeatureReplication;
  ASSERT_OK_AND_ASSIGN(Response back, DecodeResponse(PayloadOfResponse(ack)));
  EXPECT_EQ(back.protocol_version, 2u);
  EXPECT_EQ(back.feature_bits, kFeatureReplication);
}

TEST(WireV2Test, ApplyRequestRoundtripsTheBatch) {
  Request request;
  request.type = RequestType::kApply;
  request.deadline_ms = 250;
  request.batch = ScriptBatch();
  ASSERT_OK_AND_ASSIGN(Request decoded,
                       DecodeRequest(PayloadOf(request, 2), 2));
  EXPECT_EQ(decoded.type, RequestType::kApply);
  EXPECT_EQ(decoded.deadline_ms, 250u);
  ASSERT_EQ(decoded.batch.ops().size(), request.batch.ops().size());
  // Re-encoding the decoded batch must be byte-identical — the serde
  // is canonical, which is what lets followers compare WAL payloads.
  EXPECT_EQ(EncodeMutationOps(decoded.batch),
            EncodeMutationOps(request.batch));
}

TEST(WireV2Test, SubscribeAndCheckpointRoundtrip) {
  Request subscribe;
  subscribe.type = RequestType::kSubscribe;
  subscribe.deadline_ms = 99;
  subscribe.from_version = 41;
  ASSERT_OK_AND_ASSIGN(Request decoded,
                       DecodeRequest(PayloadOf(subscribe, 2), 2));
  EXPECT_EQ(decoded.from_version, 41u);
  EXPECT_EQ(decoded.deadline_ms, 99u);

  Request checkpoint;
  checkpoint.type = RequestType::kCheckpoint;
  checkpoint.deadline_ms = 123;
  ASSERT_OK_AND_ASSIGN(Request ck, DecodeRequest(PayloadOf(checkpoint, 2), 2));
  EXPECT_EQ(ck.type, RequestType::kCheckpoint);
  EXPECT_EQ(ck.deadline_ms, 123u);

  // v2 generalizes deadline_ms to every queued type, kStats included.
  Request stats;
  stats.type = RequestType::kStats;
  stats.deadline_ms = 77;
  ASSERT_OK_AND_ASSIGN(Request st, DecodeRequest(PayloadOf(stats, 2), 2));
  EXPECT_EQ(st.deadline_ms, 77u);
}

TEST(WireV2Test, ReplicateResponseRoundtripsWalPayload) {
  Response push;
  push.type = RequestType::kReplicate;
  push.code = StatusCode::kOk;
  push.first_version = 17;
  push.wal_record = std::string("\x01\x02\x00\xff binary", 14);
  ASSERT_OK_AND_ASSIGN(Response decoded,
                       DecodeResponse(PayloadOfResponse(push)));
  EXPECT_EQ(decoded.first_version, 17u);
  EXPECT_EQ(decoded.wal_record, push.wal_record);
}

TEST(WireV2Test, ApplyResponseRoundtrip) {
  Response ack;
  ack.type = RequestType::kApply;
  ack.code = StatusCode::kOk;
  ack.snapshot_version = 9;
  ack.exec_micros = 42;
  ack.inserted_rows = {101, -1, 7};
  ack.group_size = 3;
  ASSERT_OK_AND_ASSIGN(Response decoded,
                       DecodeResponse(PayloadOfResponse(ack)));
  EXPECT_EQ(decoded.snapshot_version, 9u);
  EXPECT_EQ(decoded.inserted_rows, ack.inserted_rows);
  EXPECT_EQ(decoded.group_size, 3u);
}

TEST(WireV2Test, V2OnlyTypeUnderV1IsUnsupportedVersionNotCorruption) {
  Request request;
  request.type = RequestType::kApply;
  request.batch = ScriptBatch();
  auto decoded = DecodeRequest(PayloadOf(request, 2), /*protocol_version=*/1);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnsupportedVersion);
  // The error names both sides of the gap so an operator can act.
  EXPECT_NE(decoded.status().message().find("v2"), std::string::npos);
  EXPECT_NE(decoded.status().message().find("v1"), std::string::npos);

  Request subscribe;
  subscribe.type = RequestType::kSubscribe;
  auto sub = DecodeRequest(PayloadOf(subscribe, 2), 1);
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code(), StatusCode::kUnsupportedVersion);
}

TEST(WireV2Test, ReplicateAsRequestIsCorruption) {
  persist::ByteWriter w;
  w.PutU8(static_cast<uint8_t>(RequestType::kReplicate));
  w.PutU32(0);
  auto decoded = DecodeRequest(std::move(w).Take(), 2);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(WireV2Test, UnsupportedVersionStatusCodeSurvivesTheWire) {
  // The one response every version of the protocol must be able to
  // carry: the refusal itself.
  Response refusal;
  refusal.type = RequestType::kHello;
  refusal.code = StatusCode::kUnsupportedVersion;
  refusal.message = "client speaks wire protocol v1 but this endpoint "
                    "requires v2 through v2";
  ASSERT_OK_AND_ASSIGN(Response decoded,
                       DecodeResponse(PayloadOfResponse(refusal)));
  EXPECT_EQ(decoded.code, StatusCode::kUnsupportedVersion);
  EXPECT_EQ(decoded.message, refusal.message);
}

// --- The truncation property sweep ---------------------------------

void SweepRequestTruncations(const Request& request) {
  const std::string payload = PayloadOf(request, 2);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = DecodeRequest(payload.substr(0, cut), 2);
    ASSERT_FALSE(decoded.ok())
        << "truncation at byte " << cut << "/" << payload.size()
        << " decoded successfully";
    const StatusCode code = decoded.status().code();
    EXPECT_TRUE(code == StatusCode::kCorruption ||
                code == StatusCode::kUnsupportedVersion)
        << "truncation at byte " << cut << " gave untyped "
        << decoded.status().ToString();
  }
  // Trailing garbage is equally typed.
  auto padded = DecodeRequest(payload + "x", 2);
  ASSERT_FALSE(padded.ok());
  EXPECT_EQ(padded.status().code(), StatusCode::kCorruption);
}

TEST(WireV2Test, TruncatedApplyPayloadsAreTypedAtEveryOffset) {
  Request request;
  request.type = RequestType::kApply;
  request.deadline_ms = 1000;
  request.batch = ScriptBatch();
  SweepRequestTruncations(request);
}

TEST(WireV2Test, TruncatedSubscribePayloadsAreTypedAtEveryOffset) {
  Request request;
  request.type = RequestType::kSubscribe;
  request.deadline_ms = 1000;
  request.from_version = 0x1122334455667788ull;
  SweepRequestTruncations(request);
}

TEST(WireV2Test, TruncatedReplicatePushesAreTypedAtEveryOffset) {
  // The follower decodes these off a live socket; a torn push must
  // never yield a partially-applied record.
  Response push;
  push.type = RequestType::kReplicate;
  push.code = StatusCode::kOk;
  push.first_version = 3;
  push.wal_record = std::string(64, '\x5a');
  const std::string payload = PayloadOfResponse(push);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = DecodeResponse(payload.substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
        << "cut at " << cut;
  }
}

TEST(WireV2Test, MutationOpsSerdeTruncationSweep) {
  const std::string encoded = EncodeMutationOps(ScriptBatch());
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto decoded = DecodeMutationOps(
        std::string_view(encoded).substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
        << "cut at " << cut;
  }
  ASSERT_OK_AND_ASSIGN(MutationBatch whole, DecodeMutationOps(encoded));
  EXPECT_EQ(EncodeMutationOps(whole), encoded);
}

}  // namespace
}  // namespace sqopt::server

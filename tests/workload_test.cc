#include <gtest/gtest.h>

#include <set>

#include "catalog/schema_builder.h"
#include "exec/executor.h"
#include "query/query_parser.h"
#include "tests/test_util.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

namespace sqopt {
namespace {

using sqopt::testing::ExperimentFixture;

TEST(ExperimentSchemaTest, MatchesTable41Shape) {
  auto schema = BuildExperimentSchema();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_classes(), 5u);        // Table 4.1: 5 classes
  EXPECT_EQ(schema->num_relationships(), 6u);  // Table 4.1: 6 rels
}

TEST(DbSpecTest, PaperDatabaseSpecsMatchTable41) {
  std::vector<DbSpec> specs = PaperDatabases();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].class_cardinality, 52);
  EXPECT_EQ(specs[0].rel_cardinality, 77);
  EXPECT_EQ(specs[1].class_cardinality, 104);
  EXPECT_EQ(specs[1].rel_cardinality, 154);
  EXPECT_EQ(specs[2].class_cardinality, 208);
  EXPECT_EQ(specs[2].rel_cardinality, 308);
  EXPECT_EQ(specs[3].class_cardinality, 208);
  EXPECT_EQ(specs[3].rel_cardinality, 616);
}

class DbGenTest : public ExperimentFixture {};

TEST_F(DbGenTest, GeneratesRequestedCardinalities) {
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"T", 52, 77}, 42));
  for (const ObjectClass& oc : schema_.classes()) {
    EXPECT_EQ(store->NumObjects(oc.id), 52) << oc.name;
  }
  for (const Relationship& rel : schema_.relationships()) {
    EXPECT_EQ(store->NumPairs(rel.id), 77) << rel.name;
  }
}

TEST_F(DbGenTest, DeterministicBySeed) {
  ASSERT_OK_AND_ASSIGN(auto a,
                       GenerateDatabase(schema_, DbSpec{"T", 20, 30}, 7));
  ASSERT_OK_AND_ASSIGN(auto b,
                       GenerateDatabase(schema_, DbSpec{"T", 20, 30}, 7));
  AttrRef rating = schema_.ResolveQualified("supplier.rating").value();
  ClassId supplier = schema_.FindClass("supplier");
  for (int64_t row = 0; row < 20; ++row) {
    EXPECT_EQ(a->extent(supplier).ValueAt(row, rating.attr_id),
              b->extent(supplier).ValueAt(row, rating.attr_id));
  }
}

TEST_F(DbGenTest, LinksStayWithinSegments) {
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"T", 40, 100}, 11));
  for (const Relationship& rel : schema_.relationships()) {
    for (int64_t row = 0; row < store->NumObjects(rel.a); ++row) {
      for (int64_t partner : store->Partners(rel.id, rel.a, row)) {
        EXPECT_EQ(SegmentOfRow(row), SegmentOfRow(partner))
            << rel.name << " crosses segments";
      }
    }
  }
}

// The linchpin of experimental soundness: every constraint holds on the
// generated data, across every relationship path (checked pairwise for
// two-class constraints via full cross product within linked segments).
TEST_F(DbGenTest, IntraClassConstraintsHoldOnData) {
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"T", 60, 90}, 3));
  for (ConstraintId id = 0;
       id < static_cast<ConstraintId>(catalog_->clauses().size()); ++id) {
    const HornClause& clause = catalog_->clause(id);
    if (clause.Classify() != ConstraintClass::kIntra) continue;
    std::vector<ClassId> classes = clause.ReferencedClasses();
    ASSERT_EQ(classes.size(), 1u);
    ClassId cid = classes[0];
    for (int64_t row = 0; row < store->NumObjects(cid); ++row) {
      bool antecedents_hold = true;
      auto eval = [&](const Predicate& p) {
        const Value& lhs =
            store->extent(cid).ValueAt(row, p.lhs().attr_id);
        return EvalCompare(lhs, p.op(), p.rhs_value());
      };
      for (const Predicate& a : clause.antecedents()) {
        if (!eval(a)) antecedents_hold = false;
      }
      if (antecedents_hold) {
        EXPECT_TRUE(eval(clause.consequent()))
            << clause.ToString(schema_) << " violated at row " << row;
      }
    }
  }
}

TEST_F(DbGenTest, InterClassConstraintsHoldAcrossSegments) {
  ASSERT_OK_AND_ASSIGN(
      auto store, GenerateDatabase(schema_, DbSpec{"T", 60, 90}, 3));
  // For each 2-class constraint with attr-const predicates, check every
  // same-segment cross pair (the only pairs any join can produce).
  for (ConstraintId id = 0;
       id < static_cast<ConstraintId>(catalog_->clauses().size()); ++id) {
    const HornClause& clause = catalog_->clause(id);
    if (clause.Classify() != ConstraintClass::kInter) continue;
    std::vector<ClassId> classes = clause.ReferencedClasses();
    if (classes.size() != 2) continue;
    bool all_const = clause.consequent().is_attr_const();
    for (const Predicate& a : clause.antecedents()) {
      if (!a.is_attr_const()) all_const = false;
    }
    if (!all_const) continue;

    auto eval = [&](const Predicate& p, int64_t row_of_its_class) {
      return EvalCompare(store->extent(p.lhs().class_id)
                             .ValueAt(row_of_its_class, p.lhs().attr_id),
                         p.op(), p.rhs_value());
    };
    int64_t n0 = store->NumObjects(classes[0]);
    int64_t n1 = store->NumObjects(classes[1]);
    for (int64_t r0 = 0; r0 < n0; ++r0) {
      for (int64_t r1 = 0; r1 < n1; ++r1) {
        if (SegmentOfRow(r0) != SegmentOfRow(r1)) continue;
        bool antecedents_hold = true;
        for (const Predicate& a : clause.antecedents()) {
          int64_t row = a.lhs().class_id == classes[0] ? r0 : r1;
          if (!eval(a, row)) antecedents_hold = false;
        }
        if (antecedents_hold) {
          const Predicate& c = clause.consequent();
          int64_t row = c.lhs().class_id == classes[0] ? r0 : r1;
          EXPECT_TRUE(eval(c, row))
              << clause.ToString(schema_) << " violated at (" << r0 << ","
              << r1 << ")";
        }
      }
    }
  }
}

TEST(PathEnumTest, SinglePathChain) {
  SchemaBuilder b;
  b.AddClass("a");
  b.AddClass("b");
  b.AddClass("c");
  b.AddRelationship("ab", "a", "b");
  b.AddRelationship("bc", "b", "c");
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  std::vector<SchemaPath> paths = EnumerateSimplePaths(*schema, 1, 3);
  // 3 singletons + ab + bc + abc = 6.
  EXPECT_EQ(paths.size(), 6u);
  for (const SchemaPath& p : paths) {
    EXPECT_EQ(p.classes.size(), p.relationships.size() + 1);
  }
}

TEST(PathEnumTest, ReversalsNotDuplicated) {
  SchemaBuilder b;
  b.AddClass("a");
  b.AddClass("b");
  b.AddRelationship("ab", "a", "b");
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  std::vector<SchemaPath> paths = EnumerateSimplePaths(*schema, 2, 2);
  ASSERT_EQ(paths.size(), 1u);
}

class PathQueryTest : public ExperimentFixture {};

TEST_F(PathQueryTest, ExperimentSchemaHasManyPaths) {
  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 5);
  // 5 singletons, 6 two-class paths, and longer chains: the paper drew
  // 40 random queries from "all possible paths", so there must be
  // plenty.
  EXPECT_GT(paths.size(), 30u);
  // No class or relationship repeats within a path.
  for (const SchemaPath& p : paths) {
    std::set<ClassId> cs(p.classes.begin(), p.classes.end());
    std::set<RelId> rs(p.relationships.begin(), p.relationships.end());
    EXPECT_EQ(cs.size(), p.classes.size());
    EXPECT_EQ(rs.size(), p.relationships.size());
  }
}

TEST_F(PathQueryTest, GeneratedQueriesAreValid) {
  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 5);
  QueryGenerator gen(&schema_, /*seed=*/99);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> queries, gen.Sample(paths, 40));
  EXPECT_EQ(queries.size(), 40u);
  for (const Query& q : queries) {
    EXPECT_OK(ValidateQuery(schema_, q));
    EXPECT_GE(q.projection.size(), 1u);
  }
}

TEST_F(PathQueryTest, GenerationIsDeterministic) {
  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema_, 1, 5);
  QueryGenerator a(&schema_, 5), b(&schema_, 5);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> qa, a.Sample(paths, 10));
  ASSERT_OK_AND_ASSIGN(std::vector<Query> qb, b.Sample(paths, 10));
  EXPECT_EQ(qa, qb);
}

}  // namespace
}  // namespace sqopt

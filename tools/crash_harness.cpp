// Crash-recovery gauntlet for the persistence subsystem (the CI
// `crash-recovery` job and the nightly soak). The harness proves the
// kill-point recovery property: whatever instant a writer process dies
// at — mid-WAL-append, between a checkpoint's rename and truncate, or
// at an arbitrary torn-tail byte offset — re-opening the directory
// yields an engine whose data_version names a committed prefix of the
// deterministic batch script, and whose answers to every fixture query
// are identical to an in-memory oracle that applied exactly that
// prefix.
//
// Modes (one binary, parent re-execs itself for writer children):
//   fixture  --dir D --seed S                create fixture dir (Save)
//   writer   --dir D --seed S --batches B --checkpoint-every C
//            [--kill-at K --crash-point P --group G]
//            run the script in commit groups of G; die at K
//   verify   --dir D --seed S --batches B    reopen + diff vs oracle
//   sweep    --dir D --seed S --kills N --batches B --checkpoint-every C
//            [--artifact-dir A]              randomized kill-point sweep
//   torn     --dir D --seed S --batches B --checkpoint-every C
//            [--artifact-dir A]              torn-tail truncation sweep
//   dump     --dir D --seed S --batches B --checkpoint-every C
//            clean run leaving a snapshot + WAL tail (cross-compiler leg:
//            one toolchain dumps, the other runs `verify` on it)
//
// `--shards N` (fixture / writer / verify / sweep) swaps the engine
// under test for the sharded coordinator: the writer commits the same
// deterministic script through ShardedEngine (head validation →
// coordinator WAL → per-shard group commit), kill points cover the
// coordinator append, mid-dispatch shard divergence windows, manifest
// renames, and per-shard checkpoints, and verification reopens the
// WHOLE fleet and diffs it against the single-engine in-memory oracle
// — proving every shard converges to the manifest's committed prefix.
//
// On any failure a repro artifact (seed + kill spec + command lines) is
// written under --artifact-dir and the process exits non-zero.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "persist/crash_point.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "shard/sharded_engine.h"
#include "workload/mutation_script.h"

namespace fs = std::filesystem;
using namespace sqopt;  // NOLINT(build/namespaces) — tool binary

namespace {

const DbSpec kSpec{"crash_harness", 40, 60};

// Crash points the sweep draws from. "exit" dies cleanly BEFORE the
// commit group containing batch K (committed prefix must be exactly
// the groups before it); the wal_* points die inside that group's
// single WAL append; group_post_wal dies between the group's append
// and its in-memory publish (recovery must replay the WHOLE group —
// the atomicity claim of the group record); the snapshot/checkpoint
// points die inside the first checkpoint at or after the group.
const std::vector<std::string> kCrashPoints = {
    "exit",
    "wal_pre_write",
    "wal_pre_sync",
    "wal_post_sync",
    "group_post_wal",
    "snapshot_pre_tmp_sync",
    "snapshot_pre_rename",
    "checkpoint_post_rename",
    "checkpoint_post_truncate",
};

// Sharded-mode kill points. The wal_* points fire on the COORDINATOR
// log append (it is the first WAL touched after arming — the head is
// memory-only and per-shard appends come after dispatch begins);
// group_post_wal fires in the head's commit, BEFORE the coordinator
// append, so its committed prefix excludes the kill group. coord_post_
// log / coord_mid_dispatch kill between the coordinator's durability
// point and full shard dispatch — the windows where shards disagree
// with each other and recovery must replay every shard forward. The
// manifest_* and shard snapshot/checkpoint points die inside
// Checkpoint, where the coordinator log still covers everything.
const std::vector<std::string> kShardCrashPoints = {
    "exit",
    "wal_pre_write",
    "wal_pre_sync",
    "wal_post_sync",
    "group_post_wal",
    "coord_post_log",
    "coord_mid_dispatch",
    "manifest_pre_rename",
    "manifest_post_rename",
    "snapshot_pre_tmp_sync",
    "snapshot_pre_rename",
    "checkpoint_post_rename",
    "checkpoint_post_truncate",
};

struct Args {
  std::string mode;
  std::string dir;
  std::string artifact_dir = "recovery-artifacts";
  uint64_t seed = 20260729;
  int batches = 48;
  int checkpoint_every = 7;
  int kills = 16;
  int kill_at = -1;
  // Batches per explicit commit group the writer submits (ApplyGroup).
  // 1 = the historical one-Apply-per-batch script. The sweep overrides
  // this per kill to exercise the leader/follower protocol.
  int group = 1;
  // 0 = single Engine; >0 runs the ShardedEngine coordinator with this
  // fleet size (fixture / writer / verify / sweep).
  int shards = 0;
  std::string crash_point;
};

std::optional<Args> ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--mode" && (v = next())) {
      args.mode = v;
    } else if (flag == "--dir" && (v = next())) {
      args.dir = v;
    } else if (flag == "--artifact-dir" && (v = next())) {
      args.artifact_dir = v;
    } else if (flag == "--seed" && (v = next())) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--batches" && (v = next())) {
      args.batches = std::atoi(v);
    } else if (flag == "--checkpoint-every" && (v = next())) {
      args.checkpoint_every = std::atoi(v);
    } else if (flag == "--kills" && (v = next())) {
      args.kills = std::atoi(v);
    } else if (flag == "--kill-at" && (v = next())) {
      args.kill_at = std::atoi(v);
    } else if (flag == "--group" && (v = next())) {
      args.group = std::atoi(v);
    } else if (flag == "--shards" && (v = next())) {
      args.shards = std::atoi(v);
    } else if (flag == "--crash-point" && (v = next())) {
      args.crash_point = v;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return std::nullopt;
    }
  }
  if (args.mode.empty() || args.dir.empty()) {
    std::fprintf(stderr,
                 "usage: crash_harness --mode "
                 "fixture|writer|verify|sweep|torn|dump --dir D [...]\n");
    return std::nullopt;
  }
  return args;
}

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "crash_harness: %s\n", msg.c_str());
  std::exit(2);
}

void WriteArtifact(const Args& args, const std::string& name,
                   const std::string& detail) {
  fs::create_directories(args.artifact_dir);
  const std::string path =
      (fs::path(args.artifact_dir) / (name + ".txt")).string();
  std::ofstream out(path);
  out << "crash_harness failure\n"
      << "mode: " << args.mode << "\nseed: " << args.seed
      << "\nbatches: " << args.batches
      << "\ncheckpoint_every: " << args.checkpoint_every << "\n"
      << detail << "\n";
  std::fprintf(stderr, "crash_harness: FAILURE — artifact at %s\n%s\n",
               path.c_str(), detail.c_str());
}

template <typename EngineT>
std::vector<int64_t> BaseRows(const EngineT& engine) {
  std::vector<int64_t> rows;
  for (const ObjectClass& oc : engine.schema().classes()) {
    rows.push_back(engine.store()->NumObjects(oc.id));
  }
  return rows;
}

Engine MakeOracle(uint64_t seed, int committed) {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  if (!opened.ok()) Die("oracle open: " + opened.status().ToString());
  Engine oracle = std::move(opened).value();
  Status loaded = oracle.Load(DataSource::Generated(kSpec, seed));
  if (!loaded.ok()) Die("oracle load: " + loaded.ToString());
  MutationScript script(&oracle.schema(), BaseRows(oracle), seed);
  for (int i = 0; i < committed; ++i) {
    auto batch = script.Next();
    if (!batch.ok()) Die("oracle script: " + batch.status().ToString());
    auto out = oracle.Apply(*batch);
    if (!out.ok()) {
      Die("oracle apply of batch " + std::to_string(i) + ": " +
          out.status().ToString());
    }
  }
  return oracle;
}

// ---------------------------------------------------------------------
// Modes.
// ---------------------------------------------------------------------

int RunFixture(const Args& args) {
  if (args.shards > 0) {
    shard::ShardOptions options;
    options.shards = args.shards;
    auto opened = shard::ShardedEngine::Open(SchemaSource::Experiment(),
                                             ConstraintSource::Experiment(),
                                             options);
    if (!opened.ok()) Die("fleet open: " + opened.status().ToString());
    shard::ShardedEngine fleet = std::move(opened).value();
    Status loaded = fleet.Load(DataSource::Generated(kSpec, args.seed));
    if (!loaded.ok()) Die("fleet load: " + loaded.ToString());
    Status saved = fleet.Save(args.dir);
    if (!saved.ok()) Die("fleet save: " + saved.ToString());
    return 0;
  }
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  if (!opened.ok()) Die("open: " + opened.status().ToString());
  Engine engine = std::move(opened).value();
  Status loaded = engine.Load(DataSource::Generated(kSpec, args.seed));
  if (!loaded.ok()) Die("load: " + loaded.ToString());
  Status saved = engine.Save(args.dir);
  if (!saved.ok()) Die("save: " + saved.ToString());
  return 0;
}

// The writer's commit loop, shared by the single-engine and sharded
// paths (same Apply/ApplyGroup/Checkpoint surface).
template <typename EngineT>
int RunWriterLoop(EngineT& engine, const Args& args) {
  if (engine.data_version() != 1) {
    Die("writer expects a fresh fixture (version 1), found version " +
        std::to_string(engine.data_version()));
  }
  MutationScript script(&engine.schema(), BaseRows(engine), args.seed);
  const int group = std::max(1, args.group);
  for (int g = 0; g < args.batches; g += group) {
    const int size = std::min(group, args.batches - g);
    // Arm (or die) before the GROUP containing the kill batch: the
    // group commits through one WAL append, so the wal_*/group_*
    // points fire inside that group's commit.
    if (args.kill_at >= g && args.kill_at < g + size &&
        !args.crash_point.empty()) {
      if (args.crash_point == "exit") _exit(137);
      persist::ArmCrashPoint(args.crash_point.c_str());
    }
    std::vector<MutationBatch> batches;
    batches.reserve(static_cast<size_t>(size));
    for (int i = 0; i < size; ++i) {
      auto batch = script.Next();
      if (!batch.ok()) Die("script: " + batch.status().ToString());
      batches.push_back(std::move(*batch));
    }
    std::vector<Result<ApplyOutcome>> results = engine.ApplyGroup(batches);
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        Die("apply of batch " + std::to_string(g + static_cast<int>(i)) +
            ": " + results[i].status().ToString());
      }
    }
    bool checkpoint = false;
    for (int i = g; i < g + size; ++i) {
      if (args.checkpoint_every > 0 &&
          i % args.checkpoint_every == args.checkpoint_every - 1) {
        checkpoint = true;
      }
    }
    if (checkpoint) {
      Status ck = engine.Checkpoint();
      if (!ck.ok()) Die("checkpoint: " + ck.ToString());
    }
  }
  return 0;
}

int RunWriter(const Args& args) {
  if (args.shards > 0) {
    auto opened = shard::ShardedEngine::Open(args.dir);
    if (!opened.ok()) Die("fleet writer open: " + opened.status().ToString());
    shard::ShardedEngine fleet = std::move(opened).value();
    return RunWriterLoop(fleet, args);
  }
  auto opened = Engine::Open(args.dir);
  if (!opened.ok()) Die("writer open: " + opened.status().ToString());
  Engine engine = std::move(opened).value();
  return RunWriterLoop(engine, args);
}

// The recovery diff shared by both engine shapes: derive the committed
// prefix from data_version and compare counts + every fixture query
// against an in-memory single-engine oracle that applied exactly that
// prefix. Returns an error description, or empty on success.
template <typename EngineT>
std::string DiffAgainstOracle(const EngineT& engine, uint64_t seed,
                              int max_batches) {
  const uint64_t version = engine.data_version();
  if (version < 1 || version > 1 + static_cast<uint64_t>(max_batches)) {
    return "data_version " + std::to_string(version) +
           " names an impossible committed prefix (ran " +
           std::to_string(max_batches) + " batches)";
  }
  const int committed = static_cast<int>(version - 1);
  Engine oracle = MakeOracle(seed, committed);
  if (oracle.data_version() != version) {
    return "oracle version mismatch: " +
           std::to_string(oracle.data_version()) + " vs " +
           std::to_string(version);
  }
  for (const ObjectClass& oc : engine.schema().classes()) {
    if (engine.store()->NumLiveObjects(oc.id) !=
        oracle.store()->NumLiveObjects(oc.id)) {
      return "live count of class '" + oc.name + "' diverged at version " +
             std::to_string(version);
    }
  }
  for (const Relationship& rel : engine.schema().relationships()) {
    if (engine.store()->NumPairs(rel.id) !=
        oracle.store()->NumPairs(rel.id)) {
      return "pair count of relationship '" + rel.name +
             "' diverged at version " + std::to_string(version);
    }
  }
  for (const std::string& text : MutationScript::QueryPool()) {
    auto a = engine.Execute(text);
    auto b = oracle.Execute(text);
    if (!a.ok()) return "recovered engine failed query: " + text;
    if (!b.ok()) return "oracle failed query: " + text;
    if (!a->rows.SameDistinctRows(b->rows)) {
      return "answers diverged at version " + std::to_string(version) +
             " on: " + text;
    }
  }
  return "";
}

std::string VerifyDir(const std::string& dir, uint64_t seed,
                      int max_batches, int shards) {
  if (shards > 0) {
    auto reopened = shard::ShardedEngine::Open(dir);
    if (!reopened.ok()) {
      return "fleet reopen failed: " + reopened.status().ToString();
    }
    if (reopened->num_shards() != shards) {
      return "fleet reopened with " +
             std::to_string(reopened->num_shards()) + " shards, expected " +
             std::to_string(shards);
    }
    return DiffAgainstOracle(*reopened, seed, max_batches);
  }
  auto reopened = Engine::Open(dir);
  if (!reopened.ok()) {
    return "reopen failed: " + reopened.status().ToString();
  }
  return DiffAgainstOracle(*reopened, seed, max_batches);
}

// Spawns this binary as `--mode writer` on `dir` and waits. Returns
// the child's exit status (137 = simulated crash), or -1 on spawn
// failure.
int SpawnWriter(const Args& args, const std::string& dir, int kill_at,
                const std::string& crash_point, int group) {
  char self[4096];
  ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n <= 0) Die("cannot resolve /proc/self/exe");
  self[n] = '\0';

  std::vector<std::string> argv_s = {
      self,         "--mode",    "writer",
      "--dir",      dir,         "--seed",
      std::to_string(args.seed), "--batches",
      std::to_string(args.batches), "--checkpoint-every",
      std::to_string(args.checkpoint_every), "--group",
      std::to_string(group)};
  if (args.shards > 0) {
    argv_s.push_back("--shards");
    argv_s.push_back(std::to_string(args.shards));
  }
  if (kill_at >= 0) {
    argv_s.push_back("--kill-at");
    argv_s.push_back(std::to_string(kill_at));
    argv_s.push_back("--crash-point");
    argv_s.push_back(crash_point);
  }
  std::vector<char*> argv;
  argv.reserve(argv_s.size() + 1);
  for (std::string& s : argv_s) argv.push_back(s.data());
  argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) Die("fork failed");
  if (pid == 0) {
    ::execv(self, argv.data());
    _exit(127);  // exec failed
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

void CopyDir(const fs::path& from, const fs::path& to) {
  fs::remove_all(to);
  fs::create_directories(to);
  fs::copy(from, to, fs::copy_options::recursive);
}

int RunSweep(const Args& args) {
  const fs::path root = args.dir;
  const fs::path fixture = root / "fixture";
  fs::remove_all(root);
  Args fixture_args = args;
  fixture_args.dir = fixture.string();
  RunFixture(fixture_args);

  Rng rng(args.seed ^ 0xC4A54);
  const std::vector<std::string>& points =
      args.shards > 0 ? kShardCrashPoints : kCrashPoints;
  int failures = 0;
  for (int k = 0; k < args.kills; ++k) {
    const int kill_at = static_cast<int>(
        rng.Index(static_cast<size_t>(args.batches)));
    const std::string& point = points[rng.Index(points.size())];
    // Vary the commit-group size so the sweep exercises the group WAL
    // record: a kill between a group's single append and its publish
    // must recover the whole group or none of it.
    const int group = 1 << rng.Index(3);  // 1, 2, or 4
    const fs::path run = root / "run";
    CopyDir(fixture, run);

    const int status = SpawnWriter(args, run.string(), kill_at, point, group);
    std::string error;
    if (status != 0 && status != 137) {
      error = "writer exited with unexpected status " +
              std::to_string(status);
    } else {
      error = VerifyDir(run.string(), args.seed, args.batches, args.shards);
    }
    // Exact committed-prefix expectations where the kill point pins
    // them (fsync'd appends survive a process kill deterministically).
    // With grouping, the writer dies around the COMMIT GROUP covering
    // kill_at: before the durable append the prefix is the groups
    // before it; once the group record hits the WAL (the page cache
    // survives a process kill) recovery replays the whole group, never
    // part of it. In sharded mode the durable append is the
    // COORDINATOR log's, and group_post_wal moves to the pre-durable
    // side: it fires in the memory-only head's commit, before the
    // coordinator append.
    const bool pre_durable =
        point == "exit" || point == "wal_pre_write" ||
        (args.shards > 0 && point == "group_post_wal");
    const bool post_durable =
        point == "wal_pre_sync" || point == "wal_post_sync" ||
        point == "coord_post_log" || point == "coord_mid_dispatch" ||
        (args.shards == 0 && point == "group_post_wal");
    if (error.empty() && (pre_durable || post_durable) && status == 137) {
      uint64_t version = 0;
      if (args.shards > 0) {
        auto reopened = shard::ShardedEngine::Open(run.string());
        version = reopened.ok() ? reopened->data_version() : 0;
      } else {
        auto reopened = Engine::Open(run.string());
        version = reopened.ok() ? reopened->data_version() : 0;
      }
      const int gstart = kill_at - (kill_at % group);
      const int gsize = std::min(group, args.batches - gstart);
      const uint64_t expected =
          pre_durable ? 1 + static_cast<uint64_t>(gstart)
                      : 1 + static_cast<uint64_t>(gstart + gsize);
      if (version != expected) {
        error = "committed prefix mismatch: kill '" + point +
                "' at batch " + std::to_string(kill_at) + " (group " +
                std::to_string(group) + ") => version " +
                std::to_string(version) + ", expected " +
                std::to_string(expected);
      }
    }
    if (!error.empty()) {
      WriteArtifact(
          args, "sweep_kill" + std::to_string(k),
          "kill_at: " + std::to_string(kill_at) + "\ncrash_point: " +
              point + "\ngroup: " + std::to_string(group) +
              "\nwriter_status: " + std::to_string(status) +
              "\nerror: " + error +
              "\nrepro: crash_harness --mode sweep --dir <tmp> --seed " +
              std::to_string(args.seed) + " --kills " +
              std::to_string(args.kills) + " --batches " +
              std::to_string(args.batches) + " --checkpoint-every " +
              std::to_string(args.checkpoint_every));
      ++failures;
    } else {
      std::printf(
          "kill %3d/%d: batch %3d group %d point %-24s status %3d  ok\n",
          k + 1, args.kills, kill_at, group, point.c_str(), status);
    }
  }
  std::printf("sweep: %d/%d kill points recovered correctly\n",
              args.kills - failures, args.kills);
  return failures == 0 ? 0 : 1;
}

int RunTorn(const Args& args) {
  const fs::path root = args.dir;
  const fs::path fixture = root / "fixture";
  const fs::path full = root / "full";
  fs::remove_all(root);
  Args fixture_args = args;
  fixture_args.dir = fixture.string();
  RunFixture(fixture_args);
  CopyDir(fixture, full);
  // A clean run whose WAL keeps a tail: pick a checkpoint interval
  // that does not divide the batch count.
  if (SpawnWriter(args, full.string(), -1, "", std::max(1, args.group)) !=
      0) {
    Die("torn-sweep writer failed");
  }

  const fs::path wal = full / persist::kWalFileName;
  const int64_t size = static_cast<int64_t>(fs::file_size(wal));
  const int64_t header = static_cast<int64_t>(persist::kWalHeaderBytes);
  // Every truncation offset in the last ~2KiB plus a stride through
  // the rest: each must recover to SOME committed prefix.
  std::vector<int64_t> offsets;
  for (int64_t off = header; off < size;
       off += (size - off > 2048 ? 97 : 1)) {
    offsets.push_back(off);
  }
  int failures = 0;
  for (size_t i = 0; i < offsets.size(); ++i) {
    const fs::path run = root / "run";
    CopyDir(full, run);
    fs::resize_file(run / persist::kWalFileName,
                    static_cast<uintmax_t>(offsets[i]));
    std::string error =
        VerifyDir(run.string(), args.seed, args.batches, /*shards=*/0);
    if (!error.empty()) {
      WriteArtifact(args, "torn_off" + std::to_string(offsets[i]),
                    "truncate_offset: " + std::to_string(offsets[i]) +
                        "\nerror: " + error);
      ++failures;
    }
  }
  std::printf("torn sweep: %zu/%zu truncation offsets recovered correctly\n",
              offsets.size() - failures, offsets.size());
  return failures == 0 ? 0 : 1;
}

int RunDump(const Args& args) {
  fs::remove_all(args.dir);
  Args fixture_args = args;
  RunFixture(fixture_args);
  Args writer_args = args;
  writer_args.kill_at = -1;
  writer_args.crash_point.clear();
  return RunWriter(writer_args);
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.has_value()) return 2;
  if (args->shards > 0 && (args->mode == "torn" || args->mode == "dump")) {
    // Artificial truncation of the coordinator log would fake a state
    // the fsync-before-dispatch ordering makes impossible (shards ahead
    // of the log), which recovery rightly reports as corruption.
    std::fprintf(stderr, "--shards is not supported in '%s' mode\n",
                 args->mode.c_str());
    return 2;
  }
  if (args->mode == "fixture") return RunFixture(*args);
  if (args->mode == "writer") return RunWriter(*args);
  if (args->mode == "dump") return RunDump(*args);
  if (args->mode == "verify") {
    std::string error =
        VerifyDir(args->dir, args->seed, args->batches, args->shards);
    if (!error.empty()) {
      WriteArtifact(*args, "verify", "error: " + error);
      return 1;
    }
    std::printf("verify: ok\n");
    return 0;
  }
  if (args->mode == "sweep") return RunSweep(*args);
  if (args->mode == "torn") return RunTorn(*args);
  std::fprintf(stderr, "unknown mode '%s'\n", args->mode.c_str());
  return 2;
}

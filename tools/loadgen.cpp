// Standalone open-loop load generator for sqopt_server: drives the
// shared experiment query pool (workload/query_pool.h) at a target QPS
// with a Zipfian mix, and reports offered/achieved throughput, typed
// rejection counts, and scheduled-arrival latency percentiles. Exits
// non-zero when --expect-clean is set and anything other than OK or a
// typed rejection came back — the CI smoke leg's "zero protocol
// errors" assertion.
//
// Flags:
//   --host=H           (default 127.0.0.1)
//   --port=N           (default 7411)
//   --port-file=PATH   read the port from PATH (written by sqopt_server)
//   --qps=N            open-loop target rate (default 500)
//   --duration-ms=N    run length (default 2000)
//   --connections=N    client connections/threads (default 8)
//   --theta=F          Zipf skew, 0 = uniform (default 0.9)
//   --deadline-ms=N    per-request deadline, 0 = server default
//   --seed=N           mix seed (default 20260807)
//   --wait-ms=N        retry the first connection for up to N ms
//                      (server startup race; default 5000)
//   --expect-clean     exit 1 on any protocol error
//   --expect-rejections exit 1 if the server shed NO load (overload runs)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/load_runner.h"
#include "workload/query_pool.h"

namespace {

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "loadgen: %s\n", msg.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqopt;  // NOLINT(build/namespaces) — tool binary

  std::string host = "127.0.0.1";
  std::string port_file;
  int port = 7411;
  uint64_t wait_ms = 5000;
  bool expect_clean = false;
  bool expect_rejections = false;
  server::LoadOptions options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--host=")) {
      host = v;
    } else if (const char* v = value("--port=")) {
      port = std::atoi(v);
    } else if (const char* v = value("--port-file=")) {
      port_file = v;
    } else if (const char* v = value("--qps=")) {
      options.target_qps = std::atof(v);
    } else if (const char* v = value("--duration-ms=")) {
      options.duration_ms = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--connections=")) {
      options.connections = std::atoi(v);
    } else if (const char* v = value("--theta=")) {
      options.zipf_theta = std::atof(v);
    } else if (const char* v = value("--deadline-ms=")) {
      options.deadline_ms = static_cast<uint32_t>(std::atoll(v));
    } else if (const char* v = value("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--wait-ms=")) {
      wait_ms = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--expect-clean") == 0) {
      expect_clean = true;
    } else if (std::strcmp(arg, "--expect-rejections") == 0) {
      expect_rejections = true;
    } else {
      Die(std::string("unknown flag ") + arg);
    }
  }

  if (!port_file.empty()) {
    // The server writes its bound port once it is listening; poll for
    // the file so "start server &; run loadgen" needs no sleep.
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(wait_ms);
    for (;;) {
      std::ifstream in(port_file);
      if (in >> port && port > 0) break;
      if (std::chrono::steady_clock::now() > give_up) {
        Die("port file " + port_file + " never appeared");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  // Wait for the server to accept (it may still be loading the DB).
  {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(wait_ms);
    for (;;) {
      auto probe = server::Client::Connect(host, port, 1000);
      if (probe.ok() && probe->Ping().ok()) break;
      if (std::chrono::steady_clock::now() > give_up) {
        Die("server at " + host + ":" + std::to_string(port) +
            " not reachable");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  const std::vector<std::string> pool = ExperimentQueryPool();
  auto ran = server::RunOpenLoop(host, port, pool, options);
  if (!ran.ok()) Die("run: " + ran.status().ToString());
  const server::LoadReport& r = *ran;

  std::printf(
      "loadgen: offered %.0f qps for %.1fs (%llu reqs, %d conns, "
      "theta %.2f)\n",
      r.offered_qps, r.wall_seconds,
      static_cast<unsigned long long>(r.sent), options.connections,
      options.zipf_theta);
  std::printf(
      "loadgen: ok %llu (%.0f qps)  overloaded %llu  timed_out %llu  "
      "failed %llu  protocol_errors %llu\n",
      static_cast<unsigned long long>(r.ok), r.achieved_qps,
      static_cast<unsigned long long>(r.overloaded),
      static_cast<unsigned long long>(r.timed_out),
      static_cast<unsigned long long>(r.failed),
      static_cast<unsigned long long>(r.protocol_errors));
  std::printf("loadgen: latency p50 %llu us  p95 %llu us  p99 %llu us  "
              "max %llu us\n",
              static_cast<unsigned long long>(r.p50_us),
              static_cast<unsigned long long>(r.p95_us),
              static_cast<unsigned long long>(r.p99_us),
              static_cast<unsigned long long>(r.max_us));

  if (expect_clean && (!r.clean() || r.failed > 0)) {
    std::fprintf(stderr, "loadgen: FAILURE — expected a clean run\n");
    return 1;
  }
  if (expect_rejections && r.overloaded == 0) {
    std::fprintf(stderr,
                 "loadgen: FAILURE — expected the server to shed load\n");
    return 1;
  }
  return 0;
}

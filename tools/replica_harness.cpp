// Replication gauntlet (the CI `replication-smoke` job): proves the
// log-shipping convergence property end to end, over real sockets and
// real processes. A leader sqopt_server and two followers run from
// copies of one fixture; a v2 client drives the deterministic
// MutationScript through kApply while an in-process oracle applies the
// same batches. The harness SIGKILLs one node mid-stream, asserts the
// exact committed prefix the kill pins (reopen the dir in-process and
// diff against an oracle that applied precisely that prefix), restarts
// the node, waits for catch-up, and finally requires every node to
// answer the whole fixture query pool bit-identically to the oracle.
//
// Modes:
//   smoke        SIGKILL follower 2 at batch K, verify its committed
//                prefix, restart it, converge, diff all three nodes
//   leader-kill  SIGKILL the leader at batch K (after K acked applies
//                its recovered version must be exactly 1+K), restart
//                it on the same port, let the followers' appliers
//                reconnect, finish the script, converge, diff
//
// Flags: --mode M --dir D [--seed S] [--batches B] [--kill-at K]
//        [--server-bin PATH] (default: sqopt_server next to this binary)
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "server/client.h"
#include "workload/mutation_script.h"

namespace fs = std::filesystem;
using namespace sqopt;  // NOLINT(build/namespaces) — tool binary

namespace {

const DbSpec kSpec{"crash_harness", 40, 60};

struct Args {
  std::string mode = "smoke";
  std::string dir;
  std::string server_bin;
  uint64_t seed = 20260807;
  int batches = 32;
  int kill_at = -1;  // default: batches / 2
};

std::optional<Args> ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--mode" && (v = next())) {
      args.mode = v;
    } else if (flag == "--dir" && (v = next())) {
      args.dir = v;
    } else if (flag == "--server-bin" && (v = next())) {
      args.server_bin = v;
    } else if (flag == "--seed" && (v = next())) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--batches" && (v = next())) {
      args.batches = std::atoi(v);
    } else if (flag == "--kill-at" && (v = next())) {
      args.kill_at = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return std::nullopt;
    }
  }
  if (args.dir.empty()) {
    std::fprintf(stderr,
                 "usage: replica_harness --mode smoke|leader-kill --dir D "
                 "[--seed S --batches B --kill-at K --server-bin PATH]\n");
    return std::nullopt;
  }
  if (args.kill_at < 0) args.kill_at = args.batches / 2;
  if (args.server_bin.empty()) {
    char self[4096];
    ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    if (n <= 0) return std::nullopt;
    self[n] = '\0';
    args.server_bin = (fs::path(self).parent_path() / "sqopt_server").string();
  }
  return args;
}

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "replica_harness: FAILURE — %s\n", msg.c_str());
  std::exit(1);
}

void CopyDir(const fs::path& from, const fs::path& to) {
  fs::remove_all(to);
  fs::create_directories(to);
  fs::copy(from, to, fs::copy_options::recursive);
}

template <typename EngineT>
std::vector<int64_t> BaseRows(const EngineT& engine) {
  std::vector<int64_t> rows;
  for (const ObjectClass& oc : engine.schema().classes()) {
    rows.push_back(engine.store()->NumObjects(oc.id));
  }
  return rows;
}

Engine OpenOracle(uint64_t seed) {
  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  if (!opened.ok()) Die("oracle open: " + opened.status().ToString());
  Engine oracle = std::move(opened).value();
  Status loaded = oracle.Load(DataSource::Generated(kSpec, seed));
  if (!loaded.ok()) Die("oracle load: " + loaded.ToString());
  return oracle;
}

// An oracle that applied exactly `committed` script batches.
Engine MakeOracle(uint64_t seed, int committed) {
  Engine oracle = OpenOracle(seed);
  MutationScript script(&oracle.schema(), BaseRows(oracle), seed);
  for (int i = 0; i < committed; ++i) {
    auto batch = script.Next();
    if (!batch.ok()) Die("oracle script: " + batch.status().ToString());
    auto out = oracle.Apply(*batch);
    if (!out.ok()) Die("oracle apply: " + out.status().ToString());
  }
  return oracle;
}

void MakeFixture(const fs::path& dir, uint64_t seed) {
  Engine engine = OpenOracle(seed);
  Status saved = engine.Save(dir.string());
  if (!saved.ok()) Die("fixture save: " + saved.ToString());
}

// ---------------------------------------------------------------------
// Process management.
// ---------------------------------------------------------------------

struct Node {
  std::string name;
  pid_t pid = -1;
  int port = 0;
  fs::path dir;
  fs::path port_file;
};

pid_t SpawnServer(const std::string& bin,
                  const std::vector<std::string>& extra) {
  std::vector<std::string> argv_s = {bin};
  argv_s.insert(argv_s.end(), extra.begin(), extra.end());
  std::vector<char*> argv;
  argv.reserve(argv_s.size() + 1);
  for (std::string& s : argv_s) argv.push_back(s.data());
  argv.push_back(nullptr);
  pid_t pid = ::fork();
  if (pid < 0) Die("fork failed");
  if (pid == 0) {
    ::execv(bin.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

// Polls the port file the server writes once it is listening. A child
// that exits before writing it is a startup failure.
int AwaitPort(Node& node, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    std::ifstream in(node.port_file);
    int port = 0;
    if (in >> port && port > 0) return port;
    int status = 0;
    if (::waitpid(node.pid, &status, WNOHANG) == node.pid) {
      node.pid = -1;
      Die(node.name + " exited during startup (status " +
          std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1) +
          ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  Die(node.name + " never wrote its port file");
}

Node StartNode(const Args& args, const std::string& name, const fs::path& dir,
               const std::vector<std::string>& extra) {
  Node node;
  node.name = name;
  node.dir = dir;
  node.port_file = fs::path(args.dir) / (name + ".port");
  fs::remove(node.port_file);
  std::vector<std::string> flags = {"--dir=" + dir.string(),
                                    "--port-file=" + node.port_file.string()};
  flags.insert(flags.end(), extra.begin(), extra.end());
  node.pid = SpawnServer(args.server_bin, flags);
  node.port = AwaitPort(node, 15000);
  return node;
}

void Kill9(Node& node) {
  if (node.pid < 0) return;
  ::kill(node.pid, SIGKILL);
  int status = 0;
  ::waitpid(node.pid, &status, 0);
  node.pid = -1;
}

void TerminateExpectClean(Node& node) {
  if (node.pid < 0) return;
  ::kill(node.pid, SIGTERM);
  int status = 0;
  ::waitpid(node.pid, &status, 0);
  node.pid = -1;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    Die(node.name + " did not drain cleanly (status " +
        std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                         : 128 + WTERMSIG(status)) +
        ")");
  }
}

// ---------------------------------------------------------------------
// Wire-side verification.
// ---------------------------------------------------------------------

server::Client MustConnect(const Node& node) {
  auto client = server::Client::Connect("127.0.0.1", node.port, 5000);
  if (!client.ok()) {
    Die("connect to " + node.name + ": " + client.status().ToString());
  }
  return std::move(client).value();
}

uint64_t WireVersion(const Node& node) {
  server::Client client = MustConnect(node);
  auto stats = client.Stats();
  if (!stats.ok()) {
    Die("stats from " + node.name + ": " + stats.status().ToString());
  }
  const std::string needle = "engine_data_version ";
  const size_t pos = stats->find(needle);
  if (pos == std::string::npos) {
    Die(node.name + " kStats text lacks engine_data_version");
  }
  return std::strtoull(stats->c_str() + pos + needle.size(), nullptr, 10);
}

void AwaitVersion(const Node& node, uint64_t version, int timeout_ms) {
  uint64_t seen = 0;
  for (int waited = 0; waited < timeout_ms; waited += 50) {
    seen = WireVersion(node);
    if (seen >= version) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Die(node.name + " never converged: at version " + std::to_string(seen) +
      ", wanted " + std::to_string(version));
}

// Every fixture query, answered over the wire, must match the oracle's
// distinct result set bit for bit.
void DiffNodeAgainstOracle(const Node& node, Engine& oracle) {
  server::Client client = MustConnect(node);
  for (const std::string& text : MutationScript::QueryPool()) {
    auto remote = client.Query(text);
    if (!remote.ok()) {
      Die(node.name + " transport on '" + text +
          "': " + remote.status().ToString());
    }
    if (!remote->ok()) {
      Die(node.name + " rejected '" + text + "': " +
          remote->ToStatus().ToString());
    }
    auto local = oracle.Execute(text);
    if (!local.ok()) Die("oracle failed query: " + text);
    ResultSet remote_rows;
    remote_rows.rows = remote->rows;
    if (!remote_rows.SameDistinctRows(local->rows)) {
      Die(node.name + " diverged from the oracle on: " + text);
    }
  }
  std::printf("replica_harness: %s matches the oracle on %zu queries\n",
              node.name.c_str(), MutationScript::QueryPool().size());
}

// Reopens a killed node's directory in-process and diffs it against an
// oracle that applied exactly the committed prefix its data_version
// names. Returns that version.
uint64_t VerifyCommittedPrefix(const std::string& name, const fs::path& dir,
                               uint64_t seed, int max_batches) {
  auto reopened = Engine::Open(dir.string());
  if (!reopened.ok()) {
    Die(name + " reopen after SIGKILL: " + reopened.status().ToString());
  }
  const uint64_t version = reopened->data_version();
  if (version < 1 || version > 1 + static_cast<uint64_t>(max_batches)) {
    Die(name + " recovered to impossible version " +
        std::to_string(version));
  }
  Engine oracle = MakeOracle(seed, static_cast<int>(version - 1));
  for (const std::string& text : MutationScript::QueryPool()) {
    auto a = reopened->Execute(text);
    auto b = oracle.Execute(text);
    if (!a.ok() || !b.ok()) Die(name + " prefix query failed: " + text);
    if (!a->rows.SameDistinctRows(b->rows)) {
      Die(name + " committed prefix (version " + std::to_string(version) +
          ") diverged from the oracle on: " + text);
    }
  }
  std::printf(
      "replica_harness: %s recovered to committed prefix %llu — verified\n",
      name.c_str(), static_cast<unsigned long long>(version));
  return version;
}

// Drives script batches [from, to) through the leader's kApply and the
// in-process oracle in lockstep; each ack must name the next version.
void DriveBatches(server::Client& client, Engine& oracle,
                  MutationScript& script, int from, int to,
                  const std::function<void(int)>& at_batch) {
  for (int i = from; i < to; ++i) {
    if (at_batch) at_batch(i);
    auto batch = script.Next();
    if (!batch.ok()) Die("script: " + batch.status().ToString());
    auto response = client.Apply(*batch);
    if (!response.ok()) {
      Die("apply transport at batch " + std::to_string(i) + ": " +
          response.status().ToString());
    }
    if (!response->ok()) {
      Die("apply rejected at batch " + std::to_string(i) + ": " +
          response->ToStatus().ToString());
    }
    if (response->snapshot_version != static_cast<uint64_t>(2 + i)) {
      Die("apply at batch " + std::to_string(i) + " acked version " +
          std::to_string(response->snapshot_version) + ", expected " +
          std::to_string(2 + i));
    }
    auto mirrored = oracle.Apply(*batch);
    if (!mirrored.ok()) Die("oracle apply: " + mirrored.status().ToString());
  }
}

// ---------------------------------------------------------------------
// Modes.
// ---------------------------------------------------------------------

int RunSmoke(const Args& args) {
  const fs::path root = args.dir;
  fs::remove_all(root);
  fs::create_directories(root);
  const fs::path leader_dir = root / "leader";
  const fs::path f1_dir = root / "f1";
  const fs::path f2_dir = root / "f2";
  MakeFixture(leader_dir, args.seed);
  CopyDir(leader_dir, f1_dir);
  CopyDir(leader_dir, f2_dir);

  Node leader = StartNode(args, "leader", leader_dir, {"--port=0"});
  const std::string follow = "--follow=127.0.0.1:" +
                             std::to_string(leader.port);
  Node f1 = StartNode(args, "f1", f1_dir, {"--port=0", follow});
  Node f2 = StartNode(args, "f2", f2_dir, {"--port=0", follow});

  Engine oracle = OpenOracle(args.seed);
  MutationScript script(&oracle.schema(), BaseRows(oracle), args.seed);
  server::Client client = MustConnect(leader);
  auto hello = client.Hello();
  if (!hello.ok() || !hello->ok()) Die("leader HELLO failed");

  // Mutate under replication; SIGKILL follower 2 mid-stream.
  DriveBatches(client, oracle, script, 0, args.batches, [&](int i) {
    if (i == args.kill_at) {
      std::printf("replica_harness: SIGKILL %s at batch %d\n",
                  f2.name.c_str(), i);
      Kill9(f2);
    }
  });
  const uint64_t tip = 1 + static_cast<uint64_t>(args.batches);

  // The killed follower must have recovered state naming a committed
  // prefix of the leader's history — never a torn or reordered one.
  VerifyCommittedPrefix("f2", f2_dir, args.seed, args.batches);

  // Restart it; catch-up streams from its own durable version.
  f2 = StartNode(args, "f2", f2_dir, {"--port=0", follow});
  AwaitVersion(f2, tip, 30000);
  AwaitVersion(f1, tip, 30000);
  AwaitVersion(leader, tip, 1000);

  // A checkpoint on the leader must not disturb the stream.
  if (Status ck = client.Checkpoint(); !ck.ok()) {
    Die("leader checkpoint: " + ck.ToString());
  }

  DiffNodeAgainstOracle(leader, oracle);
  DiffNodeAgainstOracle(f1, oracle);
  DiffNodeAgainstOracle(f2, oracle);

  TerminateExpectClean(f1);
  TerminateExpectClean(f2);
  TerminateExpectClean(leader);
  std::printf("replica_harness: smoke ok — %d batches, follower killed at "
              "%d, all nodes converged to version %llu\n",
              args.batches, args.kill_at,
              static_cast<unsigned long long>(tip));
  return 0;
}

int RunLeaderKill(const Args& args) {
  const fs::path root = args.dir;
  fs::remove_all(root);
  fs::create_directories(root);
  const fs::path leader_dir = root / "leader";
  const fs::path f1_dir = root / "f1";
  const fs::path f2_dir = root / "f2";
  MakeFixture(leader_dir, args.seed);
  CopyDir(leader_dir, f1_dir);
  CopyDir(leader_dir, f2_dir);

  // The leader needs a FIXED port so followers can find it again after
  // the kill; probe a few candidates since ephemeral ranges collide.
  Node leader;
  int fixed_port = 17490 + static_cast<int>(::getpid() % 997);
  for (int attempt = 0;; ++attempt) {
    leader.name = "leader";
    leader.dir = leader_dir;
    leader.port_file = root / "leader.port";
    fs::remove(leader.port_file);
    leader.pid = SpawnServer(
        args.server_bin,
        {"--dir=" + leader_dir.string(), "--port=" + std::to_string(fixed_port),
         "--port-file=" + leader.port_file.string()});
    bool up = false;
    for (int waited = 0; waited < 15000; waited += 20) {
      std::ifstream in(leader.port_file);
      int port = 0;
      if (in >> port && port > 0) {
        leader.port = port;
        up = true;
        break;
      }
      int status = 0;
      if (::waitpid(leader.pid, &status, WNOHANG) == leader.pid) {
        leader.pid = -1;
        break;  // bind failure — try the next candidate
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (up) break;
    if (attempt >= 4) Die("could not bind a fixed leader port");
    ++fixed_port;
  }

  const std::string follow = "--follow=127.0.0.1:" +
                             std::to_string(leader.port);
  Node f1 = StartNode(args, "f1", f1_dir, {"--port=0", follow});
  Node f2 = StartNode(args, "f2", f2_dir, {"--port=0", follow});

  Engine oracle = OpenOracle(args.seed);
  MutationScript script(&oracle.schema(), BaseRows(oracle), args.seed);
  {
    server::Client client = MustConnect(leader);
    auto hello = client.Hello();
    if (!hello.ok() || !hello->ok()) Die("leader HELLO failed");
    DriveBatches(client, oracle, script, 0, args.kill_at, nullptr);
  }

  std::printf("replica_harness: SIGKILL leader after %d acked batches\n",
              args.kill_at);
  Kill9(leader);

  // Every acked apply was WAL-durable before its response: the
  // recovered leader must sit at EXACTLY the acked prefix.
  const uint64_t recovered = VerifyCommittedPrefix(
      "leader", leader_dir, args.seed, args.batches);
  if (recovered != 1 + static_cast<uint64_t>(args.kill_at)) {
    Die("leader lost acked commits: recovered to version " +
        std::to_string(recovered) + " after " +
        std::to_string(args.kill_at) + " acked applies");
  }

  // Restart on the same port; the followers' appliers reconnect on
  // their own backoff and resume from their durable versions.
  leader.port_file = root / "leader.port";
  fs::remove(leader.port_file);
  leader.pid = SpawnServer(
      args.server_bin,
      {"--dir=" + leader_dir.string(),
       "--port=" + std::to_string(leader.port),
       "--port-file=" + leader.port_file.string()});
  leader.port = AwaitPort(leader, 15000);

  server::Client client = MustConnect(leader);
  auto hello = client.Hello();
  if (!hello.ok() || !hello->ok()) Die("restarted leader HELLO failed");
  DriveBatches(client, oracle, script, args.kill_at, args.batches, nullptr);

  const uint64_t tip = 1 + static_cast<uint64_t>(args.batches);
  AwaitVersion(f1, tip, 30000);
  AwaitVersion(f2, tip, 30000);

  DiffNodeAgainstOracle(leader, oracle);
  DiffNodeAgainstOracle(f1, oracle);
  DiffNodeAgainstOracle(f2, oracle);

  TerminateExpectClean(f1);
  TerminateExpectClean(f2);
  TerminateExpectClean(leader);
  std::printf("replica_harness: leader-kill ok — killed at batch %d, "
              "recovered, all nodes converged to version %llu\n",
              args.kill_at, static_cast<unsigned long long>(tip));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.has_value()) return 2;
  if (args->mode == "smoke") return RunSmoke(*args);
  if (args->mode == "leader-kill") return RunLeaderKill(*args);
  std::fprintf(stderr, "unknown mode '%s'\n", args->mode.c_str());
  return 2;
}

// The sqopt network server binary: opens an engine (a persistence
// directory from Engine::Save / crash_harness --mode fixture, or a
// freshly generated experiment database) and serves the wire protocol
// until SIGTERM/SIGINT, then drains gracefully — stops accepting,
// finishes in-flight requests, flushes every response — and exits 0.
//
// Usage:
//   sqopt_server --dir FIXTURE_DIR [flags]     serve a persisted engine
//   sqopt_server --gen ROWS [flags]            serve a generated DB
//                                              (ROWS per class, expt schema)
// Flags:
//   --port=N            TCP port (default 7411; 0 = ephemeral)
//   --port-file=PATH    write the bound port to PATH (readiness signal)
//   --threads=N         worker threads (default 4)
//   --queue=N           admission queue bound (default 128)
//   --watermark=N       backpressure watermark (default: queue bound)
//   --deadline-ms=N     default per-request deadline (default 5000)
//   --idle-timeout-ms=N idle connection reaping (default 60000)
//   --seed=N            generation seed for --gen (default 42)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/engine.h"
#include "server/server.h"

namespace {

sqopt::server::Server* g_server = nullptr;

void HandleTermination(int) {
  // RequestDrain is async-signal-safe: an atomic store + pipe write.
  if (g_server != nullptr) g_server->RequestDrain();
}

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "sqopt_server: %s\n", msg.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqopt;  // NOLINT(build/namespaces) — tool binary

  std::string dir;
  std::string port_file;
  int64_t gen_rows = 0;
  uint64_t seed = 42;
  server::ServerOptions options;
  options.port = 7411;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--dir=")) {
      dir = v;
    } else if (const char* v = value("--gen=")) {
      gen_rows = std::atoll(v);
    } else if (const char* v = value("--port=")) {
      options.port = std::atoi(v);
    } else if (const char* v = value("--port-file=")) {
      port_file = v;
    } else if (const char* v = value("--threads=")) {
      options.threads = std::atoi(v);
    } else if (const char* v = value("--queue=")) {
      options.max_queue = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--watermark=")) {
      options.backpressure_watermark = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--deadline-ms=")) {
      options.default_deadline_ms = static_cast<uint32_t>(std::atoll(v));
    } else if (const char* v = value("--idle-timeout-ms=")) {
      options.idle_timeout_ms = static_cast<uint32_t>(std::atoll(v));
    } else if (const char* v = value("--seed=")) {
      seed = std::strtoull(v, nullptr, 10);
    } else {
      Die(std::string("unknown flag ") + arg);
    }
  }
  if (dir.empty() == (gen_rows == 0)) {
    Die("exactly one of --dir=DIR or --gen=ROWS is required");
  }

  Result<Engine> opened =
      dir.empty()
          ? Engine::Open(SchemaSource::Experiment(),
                         ConstraintSource::Experiment())
          : Engine::Open(dir);
  if (!opened.ok()) Die("open: " + opened.status().ToString());
  Engine engine = std::move(opened).value();
  if (!dir.empty()) {
    std::printf("sqopt_server: opened %s at data version %llu\n",
                dir.c_str(),
                static_cast<unsigned long long>(engine.data_version()));
  } else {
    const DbSpec spec{"served", gen_rows, gen_rows * 3 / 2};
    Status loaded = engine.Load(DataSource::Generated(spec, seed));
    if (!loaded.ok()) Die("load: " + loaded.ToString());
    std::printf("sqopt_server: generated %lld rows/class (seed %llu)\n",
                static_cast<long long>(gen_rows),
                static_cast<unsigned long long>(seed));
  }

  auto started = server::Server::Start(&engine, options);
  if (!started.ok()) Die("start: " + started.status().ToString());
  g_server = started->get();

  struct sigaction sa {};
  sa.sa_handler = HandleTermination;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  const int port = (*started)->port();
  if (!port_file.empty()) {
    if (FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%d\n", port);
      std::fclose(f);
    } else {
      Die("cannot write port file " + port_file);
    }
  }
  std::printf("sqopt_server: listening on 127.0.0.1:%d\n", port);
  std::fflush(stdout);

  (*started)->Await();  // returns once a signal triggered a clean drain
  g_server = nullptr;

  const server::ServerStats stats = (*started)->stats();
  std::printf(
      "sqopt_server: drained cleanly — %llu conns, %llu requests, "
      "%llu ok, %llu overloaded, %llu timed out, %llu protocol errors\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.requests_received),
      static_cast<unsigned long long>(stats.queries_ok),
      static_cast<unsigned long long>(stats.rejected_overloaded),
      static_cast<unsigned long long>(stats.timed_out),
      static_cast<unsigned long long>(stats.protocol_errors));
  return 0;
}

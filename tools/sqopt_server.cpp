// The sqopt network server binary: opens an engine (a persistence
// directory from Engine::Save / crash_harness --mode fixture, or a
// freshly generated experiment database) and serves the wire protocol
// until SIGTERM/SIGINT, then drains gracefully — stops accepting,
// finishes in-flight requests, flushes every response — and exits 0.
//
// Topology (wire protocol v2, see DESIGN.md "Replication"): every
// --dir server is a replication LEADER — it primes a ReplicationLog
// from its WAL's committed suffix and streams commits to kSubscribe
// followers. --follow=HOST:PORT turns the process into a FOLLOWER:
// it opens its own directory (normally a copy of the leader's), runs
// a FollowerApplier that replays the leader's stream through the
// ordinary Apply path into its own WAL, and serves reads; kApply is
// rejected read-only.
//
// Usage:
//   sqopt_server --dir FIXTURE_DIR [flags]     serve a persisted engine
//   sqopt_server --gen ROWS [flags]            serve a generated DB
//                                              (ROWS per class, expt schema)
// Flags:
//   --port=N            TCP port (default 7411; 0 = ephemeral)
//   --port-file=PATH    write the bound port to PATH (readiness signal)
//   --threads=N         worker threads (default 4)
//   --queue=N           admission queue bound (default 128)
//   --watermark=N       backpressure watermark (default: queue bound)
//   --deadline-ms=N     default per-request deadline (default 5000)
//   --idle-timeout-ms=N idle connection reaping (default 60000)
//   --seed=N            generation seed for --gen (default 42)
//   --follow=HOST:PORT  follower mode: replicate from this leader
//                       (implies --read-only)
//   --read-only         reject kApply with a typed error
//   --min-protocol=N    refuse connections below wire protocol N
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/engine.h"
#include "persist/snapshot.h"
#include "replica/follower.h"
#include "replica/replication_log.h"
#include "server/server.h"

namespace {

sqopt::server::Server* g_server = nullptr;

void HandleTermination(int) {
  // RequestDrain is async-signal-safe: an atomic store + pipe write.
  if (g_server != nullptr) g_server->RequestDrain();
}

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "sqopt_server: %s\n", msg.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqopt;  // NOLINT(build/namespaces) — tool binary

  std::string dir;
  std::string port_file;
  std::string follow;
  int64_t gen_rows = 0;
  uint64_t seed = 42;
  server::ServerOptions options;
  options.port = 7411;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--dir=")) {
      dir = v;
    } else if (const char* v = value("--gen=")) {
      gen_rows = std::atoll(v);
    } else if (const char* v = value("--port=")) {
      options.port = std::atoi(v);
    } else if (const char* v = value("--port-file=")) {
      port_file = v;
    } else if (const char* v = value("--threads=")) {
      options.threads = std::atoi(v);
    } else if (const char* v = value("--queue=")) {
      options.max_queue = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--watermark=")) {
      options.backpressure_watermark = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--deadline-ms=")) {
      options.default_deadline_ms = static_cast<uint32_t>(std::atoll(v));
    } else if (const char* v = value("--idle-timeout-ms=")) {
      options.idle_timeout_ms = static_cast<uint32_t>(std::atoll(v));
    } else if (const char* v = value("--seed=")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--follow=")) {
      follow = v;
      options.read_only = true;
    } else if (std::strcmp(arg, "--read-only") == 0) {
      options.read_only = true;
    } else if (const char* v = value("--min-protocol=")) {
      options.min_protocol = static_cast<uint32_t>(std::atoi(v));
    } else {
      Die(std::string("unknown flag ") + arg);
    }
  }
  if (dir.empty() == (gen_rows == 0)) {
    Die("exactly one of --dir=DIR or --gen=ROWS is required");
  }

  Result<Engine> opened =
      dir.empty()
          ? Engine::Open(SchemaSource::Experiment(),
                         ConstraintSource::Experiment())
          : Engine::Open(dir);
  if (!opened.ok()) Die("open: " + opened.status().ToString());
  Engine engine = std::move(opened).value();
  if (!dir.empty()) {
    std::printf("sqopt_server: opened %s at data version %llu\n",
                dir.c_str(),
                static_cast<unsigned long long>(engine.data_version()));
  } else {
    const DbSpec spec{"served", gen_rows, gen_rows * 3 / 2};
    Status loaded = engine.Load(DataSource::Generated(spec, seed));
    if (!loaded.ok()) Die("load: " + loaded.ToString());
    std::printf("sqopt_server: generated %lld rows/class (seed %llu)\n",
                static_cast<long long>(gen_rows),
                static_cast<unsigned long long>(seed));
  }

  // A leader (anything not following) streams its commits; prime the
  // log with the WAL's committed suffix so followers that were
  // mid-stream at the last shutdown can resume without a re-seed.
  replica::ReplicationLog replication_log;
  replica::ReplicationLog* replication = nullptr;
  if (follow.empty()) {
    if (!dir.empty()) {
      Status primed = replication_log.PrimeFromWal(
          dir + "/" + persist::kWalFileName);
      if (!primed.ok()) Die("prime replication: " + primed.ToString());
    }
    replication_log.AttachTo(&engine);
    replication = &replication_log;
  }

  auto started = server::Server::Start(&engine, options, replication);
  if (!started.ok()) Die("start: " + started.status().ToString());
  g_server = started->get();

  // Follower mode: start the applier after the server so local reads
  // serve immediately while catch-up streams in.
  std::unique_ptr<replica::FollowerApplier> applier;
  if (!follow.empty()) {
    const size_t colon = follow.rfind(':');
    if (colon == std::string::npos) Die("--follow needs HOST:PORT");
    replica::FollowerOptions fopts;
    fopts.leader_host = follow.substr(0, colon);
    fopts.leader_port = std::atoi(follow.c_str() + colon + 1);
    auto follower = replica::FollowerApplier::Start(&engine, fopts);
    if (!follower.ok()) Die("follow: " + follower.status().ToString());
    applier = std::move(follower).value();
    std::printf("sqopt_server: following %s from version %llu\n",
                follow.c_str(),
                static_cast<unsigned long long>(engine.data_version()));
  }

  struct sigaction sa {};
  sa.sa_handler = HandleTermination;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  const int port = (*started)->port();
  if (!port_file.empty()) {
    if (FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%d\n", port);
      std::fclose(f);
    } else {
      Die("cannot write port file " + port_file);
    }
  }
  std::printf("sqopt_server: listening on 127.0.0.1:%d\n", port);
  std::fflush(stdout);

  (*started)->Await();  // returns once a signal triggered a clean drain
  g_server = nullptr;
  if (applier != nullptr) {
    applier->Stop();
    const Status health = applier->status();
    const replica::FollowerStats fs = applier->stats();
    std::printf(
        "sqopt_server: follower stopped at version %llu — %llu records "
        "applied, %llu skipped, %llu reconnects%s%s\n",
        static_cast<unsigned long long>(fs.last_applied_version),
        static_cast<unsigned long long>(fs.records_applied),
        static_cast<unsigned long long>(fs.records_skipped),
        static_cast<unsigned long long>(fs.reconnects),
        health.ok() ? "" : " — HALTED: ",
        health.ok() ? "" : health.ToString().c_str());
    if (!health.ok()) return 3;
  }

  const server::ServerStats stats = (*started)->stats();
  std::printf(
      "sqopt_server: drained cleanly — %llu conns, %llu requests, "
      "%llu ok, %llu overloaded, %llu timed out, %llu protocol errors\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.requests_received),
      static_cast<unsigned long long>(stats.queries_ok),
      static_cast<unsigned long long>(stats.rejected_overloaded),
      static_cast<unsigned long long>(stats.timed_out),
      static_cast<unsigned long long>(stats.protocol_errors));
  return 0;
}
